package aspen

import (
	"fmt"
	"sort"
	"strings"
)

// StdLib holds the machine-model include files referenced by the paper's
// Fig. 5 listing (`include memory/ddr3_1066.aspen` etc.), shipped as
// embedded sources so models evaluate offline. Capability numbers follow the
// published hardware specifications:
//
//   - Intel Xeon E5-2680 (Sandy Bridge-EP): 8 cores @ 2.7 GHz, 256-bit AVX
//     (8 SP lanes, 4 DP lanes), separate add+mul pipes (fmad_factor 2),
//     giving 345.6 GF/s SP peak.
//   - DDR3-1066 (quad channel): ~34.1 GB/s.
//   - NVIDIA M2090 (Fermi): 512 CUDA cores @ 1.3 GHz, FMA (factor 2),
//     1.33 TF/s SP peak; GDDR5 at 177 GB/s.
//   - D-Wave Vesuvius QPU socket: a single "core" whose only resource is
//     QuOps with a 20 µs anneal per operation (Fig. 5's
//     `resource QuOps(number) [number * 20/1000000]`), attached over PCIe.
//   - PCIe 2.0 x16: 8 GB/s, 5 µs latency.
var StdLib = map[string]string{
	"memory/ddr3_1066.aspen": `
// DDR3-1066, quad-channel aggregate.
memory ddr3_1066 {
  property capacity  [32e9]
  property bandwidth [34.1e9]
}
`,
	"memory/gddr5.aspen": `
// GDDR5 device memory (M2090-class board).
memory gddr5 {
  property capacity  [6e9]
  property bandwidth [177e9]
}
`,
	"links/pcie.aspen": `
// PCIe 2.0 x16.
link pcie {
  property bandwidth [8e9]
  property latency   [5e-6]
}
`,
	"sockets/intel_xeon_e5_2680.aspen": `
include memory/ddr3_1066.aspen
include links/pcie.aspen

core xeonE5Core {
  property clock         [2.7e9]
  property issue_sp      [1]
  property issue_dp      [1]
  property simd_width_sp [8]
  property simd_width_dp [4]
  property fmad_factor   [2]
}

socket intel_xeon_e5_2680 {
  [8] xeonE5Core cores
  ddr3_1066 memory
  linked with pcie
}
`,
	"sockets/nvidia_m2090.aspen": `
include memory/gddr5.aspen
include links/pcie.aspen

core fermiCore {
  property clock         [1.3e9]
  property issue_sp      [1]
  property issue_dp      [0.5]
  property simd_width_sp [1]
  property simd_width_dp [1]
  property fmad_factor   [2]
}

socket nvidia_m2090 {
  [512] fermiCore cores
  gddr5 memory
  linked with pcie
}
`,
	"sockets/dwave_vesuvius_20.aspen": `
include memory/gddr5.aspen
include links/pcie.aspen

// The D-Wave Vesuvius QPU socket: quantum operations convert to time at the
// 20 microsecond default annealing duration.
core Vesuvius20 {
  resource QuOps(number) [number * 20/1000000]
}

socket DwaveVesuvius20 {
  [1] Vesuvius20 cores
  gddr5 memory
  linked with pcie
}
`,
}

// SimpleNodeSource is the paper's Fig. 5 machine model: one node holding an
// Intel Xeon CPU socket, an NVIDIA GPU socket and a D-Wave Vesuvius QPU
// socket.
const SimpleNodeSource = `
include memory/ddr3_1066.aspen
include sockets/intel_xeon_e5_2680.aspen
include sockets/nvidia_m2090.aspen
include sockets/dwave_vesuvius_20.aspen

machine SimpleNode {
  [1] SIMPLE nodes
}

node SIMPLE {
  [1] intel_xeon_e5_2680 sockets
  [1] nvidia_m2090 sockets
  [1] DwaveVesuvius20 sockets
}
`

// Loader resolves include paths to source text.
type Loader func(path string) (string, error)

// StdLoader resolves includes against StdLib.
func StdLoader(path string) (string, error) {
	src, ok := StdLib[path]
	if !ok {
		var known []string
		for k := range StdLib {
			known = append(known, k)
		}
		sort.Strings(known)
		return "", fmt.Errorf("aspen: unknown include %q (standard library has: %s)", path, strings.Join(known, ", "))
	}
	return src, nil
}

// ParseWithIncludes parses src and recursively resolves its includes with
// the loader, merging all declarations into one file. Each include path
// loads at most once; cycles are therefore harmless.
func ParseWithIncludes(src string, load Loader) (*File, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	if err := resolveIncludes(root, root.Includes, load, seen); err != nil {
		return nil, err
	}
	return root, nil
}

func resolveIncludes(dst *File, paths []string, load Loader, seen map[string]bool) error {
	for _, path := range paths {
		if seen[path] {
			continue
		}
		seen[path] = true
		if load == nil {
			return fmt.Errorf("aspen: include %q but no loader provided", path)
		}
		src, err := load(path)
		if err != nil {
			return err
		}
		inc, err := Parse(src)
		if err != nil {
			return fmt.Errorf("aspen: include %q: %w", path, err)
		}
		if err := resolveIncludes(dst, inc.Includes, load, seen); err != nil {
			return err
		}
		mergeFile(dst, inc)
	}
	return nil
}

// mergeFile appends inc's declarations to dst, skipping duplicates by name
// (first declaration wins, so outer files may override nothing — includes
// are libraries).
func mergeFile(dst, inc *File) {
	dst.Models = append(dst.Models, inc.Models...)
	dst.Machines = append(dst.Machines, inc.Machines...)
	dst.Nodes = appendUniqueDecls(dst.Nodes, inc.Nodes)
	dst.Sockets = appendUniqueDecls(dst.Sockets, inc.Sockets)
	dst.Cores = appendUniqueDecls(dst.Cores, inc.Cores)
	dst.Memories = appendUniqueDecls(dst.Memories, inc.Memories)
	dst.Links = appendUniqueDecls(dst.Links, inc.Links)
}

func appendUniqueDecls(dst, src []*ComponentDecl) []*ComponentDecl {
	have := make(map[string]bool, len(dst))
	for _, d := range dst {
		have[d.Name] = true
	}
	for _, d := range src {
		if !have[d.Name] {
			dst = append(dst, d)
			have[d.Name] = true
		}
	}
	return dst
}

// LoadSimpleNode parses and resolves the paper's Fig. 5 machine model into a
// MachineSpec ready for evaluation.
func LoadSimpleNode() (*MachineSpec, error) {
	f, err := ParseWithIncludes(SimpleNodeSource, StdLoader)
	if err != nil {
		return nil, err
	}
	return BuildMachine(f, "SimpleNode")
}
