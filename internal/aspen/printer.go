package aspen

import (
	"fmt"
	"strings"
)

// Format renders a parsed file back to canonical ASPEN source. The output
// re-parses to a structurally identical file (round-trip property, tested),
// which makes the package usable as a formatter and lets generated models
// be inspected or stored.
func Format(f *File) string {
	var b strings.Builder
	for _, inc := range f.Includes {
		fmt.Fprintf(&b, "include %s\n", inc)
	}
	if len(f.Includes) > 0 {
		b.WriteString("\n")
	}
	for _, m := range f.Memories {
		formatComponent(&b, m)
	}
	for _, l := range f.Links {
		formatComponent(&b, l)
	}
	for _, c := range f.Cores {
		formatComponent(&b, c)
	}
	for _, s := range f.Sockets {
		formatComponent(&b, s)
	}
	for _, n := range f.Nodes {
		formatComponent(&b, n)
	}
	for _, m := range f.Machines {
		fmt.Fprintf(&b, "machine %s {\n", m.Name)
		for _, r := range m.SubRefs {
			formatSubRef(&b, r)
		}
		b.WriteString("}\n\n")
	}
	for _, m := range f.Models {
		formatModel(&b, m)
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

func formatComponent(b *strings.Builder, c *ComponentDecl) {
	fmt.Fprintf(b, "%s %s {\n", c.Kind, c.Name)
	for _, r := range c.SubRefs {
		formatSubRef(b, r)
	}
	for _, p := range c.Properties {
		fmt.Fprintf(b, "  property %s [%s]\n", p.Name, exprSrc(p.Expr))
	}
	for _, r := range c.Resources {
		if len(r.Args) > 0 {
			fmt.Fprintf(b, "  resource %s(%s) [%s]\n", r.Name, strings.Join(r.Args, ", "), exprSrc(r.Expr))
		} else {
			fmt.Fprintf(b, "  resource %s [%s]\n", r.Name, exprSrc(r.Expr))
		}
	}
	for _, l := range c.LinkedWith {
		fmt.Fprintf(b, "  linked with %s\n", l)
	}
	b.WriteString("}\n\n")
}

func formatSubRef(b *strings.Builder, r *SubComponentRef) {
	if r.Count != nil {
		fmt.Fprintf(b, "  [%s] %s %s\n", exprSrc(r.Count), r.Type, r.Kind)
	} else {
		fmt.Fprintf(b, "  %s %s\n", r.Type, r.Kind)
	}
}

func formatModel(b *strings.Builder, m *ModelDecl) {
	fmt.Fprintf(b, "model %s {\n", m.Name)
	for _, p := range m.Params {
		fmt.Fprintf(b, "  param %s = %s\n", p.Name, exprSrc(p.Expr))
	}
	for _, d := range m.Data {
		fmt.Fprintf(b, "  data %s as Array(%s, %s)\n", d.Name, exprSrc(d.Count), exprSrc(d.ElemBytes))
	}
	for _, k := range m.Kernels {
		fmt.Fprintf(b, "  kernel %s {\n", k.Name)
		formatStmts(b, k.Body, "    ")
		b.WriteString("  }\n")
	}
	b.WriteString("}\n\n")
}

func formatStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *CallStmt:
			fmt.Fprintf(b, "%s%s\n", indent, s.Name)
		case *IterateStmt:
			fmt.Fprintf(b, "%siterate [%s] {\n", indent, exprSrc(s.Count))
			formatStmts(b, s.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case *ParStmt:
			fmt.Fprintf(b, "%spar {\n", indent)
			formatStmts(b, s.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case *ExecuteStmt:
			label := ""
			if s.Label != "" {
				label = s.Label + " "
			}
			fmt.Fprintf(b, "%sexecute %s[%s] {\n", indent, label, exprSrc(s.Count))
			for _, r := range s.Resources {
				fmt.Fprintf(b, "%s  %s\n", indent, formatResource(r))
			}
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}

func formatResource(r *ResourceStmt) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]", r.Verb, exprSrc(r.Quantity))
	if len(r.Traits) > 0 {
		fmt.Fprintf(&b, " as %s", strings.Join(r.Traits, ", "))
	}
	if r.From != "" {
		fmt.Fprintf(&b, " from %s", r.From)
	}
	if r.To != "" {
		fmt.Fprintf(&b, " to %s", r.To)
	}
	if r.ElemSize != nil {
		fmt.Fprintf(&b, " of size [%s]", exprSrc(r.ElemSize))
	}
	return b.String()
}

// exprSrc renders an expression as re-parseable source (fully
// parenthesized for binary/unary nodes, so precedence survives).
func exprSrc(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		return trimFloat(x.Value)
	case *Ident:
		return x.Name
	case *Unary:
		return fmt.Sprintf("(%s%s)", x.Op, exprSrc(x.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprSrc(x.X), x.Op, exprSrc(x.Y))
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprSrc(a)
		}
		return fmt.Sprintf("%s(%s)", x.Fn, strings.Join(args, ", "))
	}
	return fmt.Sprintf("/*?%T*/", e)
}
