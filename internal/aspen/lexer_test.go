package aspen

import "testing"

func kinds(toks []Token) []TokenKind {
	ks := make([]TokenKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`param x = 3.5 + foo(2) // comment`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokIdent, TokIdent, TokAssign, TokNumber, TokPlus, TokIdent, TokLParen, TokNumber, TokRParen, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* block\ncomment */ b // line\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].Text != "c" || toks[2].Line != 3 {
		t.Errorf("line tracking wrong: %v", toks[2])
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex("a /* never ends"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexIncludePath(t *testing.T) {
	toks, err := Lex("include memory/ddr3_1066.aspen\nmodel")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "include" {
		t.Fatalf("first token %v", toks[0])
	}
	if toks[1].Kind != TokPath || toks[1].Text != "memory/ddr3_1066.aspen" {
		t.Fatalf("path token %v", toks[1])
	}
	if toks[2].Text != "model" {
		t.Fatalf("token after path: %v", toks[2])
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		"2.5e9":  "2.5e9",
		"1e-6":   "1e-6",
		"252162": "252162",
		".5":     ".5",
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("%q -> %v", src, toks[0])
		}
	}
}

func TestLexStrayDot(t *testing.T) {
	if _, err := Lex("a . b"); err == nil {
		t.Error("stray dot accepted")
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("'@' accepted")
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`"hello world"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hello world" {
		t.Errorf("string token %v", toks[0])
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("ab at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("cd at %d:%d", toks[1].Line, toks[1].Col)
	}
}
