package aspen

import (
	"fmt"
)

// MachineSpec is a resolved machine model: the socket inventory of one node
// with capability lookup. It implements the resource→time conversion used by
// the application-model evaluator.
//
// Conversion semantics (documented here because the original ASPEN tool is
// closed; DESIGN.md summarizes the same rules):
//
//   - flops: rate = clock × cores × issue_<prec> [× simd_width_<prec> when
//     the "simd" trait is present] [× fmad_factor when "fmad" is present],
//     where <prec> is "sp" or "dp" (default "dp"). Properties live on the
//     core declaration; missing issue/simd/fmad properties default to 1.
//   - loads/stores: bytes / memory "bandwidth" property of the host
//     socket's memory.
//   - intracomm: bytes / link "bandwidth" + link "latency" (once per
//     statement), using the link of the socket that declares it (the
//     evaluator binds intracomm to the device socket's link when present).
//   - microseconds/milliseconds/seconds/nanoseconds: direct time.
//   - any other verb: a custom resource (e.g. QuOps) defined by a
//     `resource NAME(arg) [expr]` on some core; expr evaluates with the
//     consumed quantity bound to arg and yields seconds.
type MachineSpec struct {
	Name      string
	NodeName  string
	NodeCount float64
	Sockets   []*SocketSpec
}

// SocketSpec is one socket of the node with resolved sub-components.
type SocketSpec struct {
	Name      string
	CoreCount float64
	CoreName  string
	Core      *ComponentDecl // may be nil for memory-only sockets
	Memory    *ComponentDecl // may be nil
	Link      *ComponentDecl // may be nil
}

// numProperty evaluates a numeric property on decl, returning def when the
// property (or decl) is absent.
func numProperty(decl *ComponentDecl, name string, def float64) (float64, error) {
	if decl == nil {
		return def, nil
	}
	e := decl.Property(name)
	if e == nil {
		return def, nil
	}
	v, err := EvalExpr(e, nil)
	if err != nil {
		return 0, fmt.Errorf("aspen: property %s of %s %s: %w", name, decl.Kind, decl.Name, err)
	}
	return v, nil
}

// FlopsRate returns the socket's floating-point rate in flops/second for the
// given traits.
func (s *SocketSpec) FlopsRate(traits []string) (float64, error) {
	if s.Core == nil {
		return 0, fmt.Errorf("aspen: socket %s has no core for flops", s.Name)
	}
	clock, err := numProperty(s.Core, "clock", 0)
	if err != nil {
		return 0, err
	}
	if clock <= 0 {
		return 0, fmt.Errorf("aspen: core %s of socket %s lacks a positive clock property", s.CoreName, s.Name)
	}
	prec := "dp"
	simd, fmad := false, false
	for _, t := range traits {
		switch t {
		case "sp":
			prec = "sp"
		case "dp":
			prec = "dp"
		case "simd":
			simd = true
		case "fmad":
			fmad = true
		}
	}
	issue, err := numProperty(s.Core, "issue_"+prec, 1)
	if err != nil {
		return 0, err
	}
	rate := clock * s.CoreCount * issue
	if simd {
		w, err := numProperty(s.Core, "simd_width_"+prec, 1)
		if err != nil {
			return 0, err
		}
		rate *= w
	}
	if fmad {
		f, err := numProperty(s.Core, "fmad_factor", 1)
		if err != nil {
			return 0, err
		}
		rate *= f
	}
	return rate, nil
}

// MemoryBandwidth returns the socket memory bandwidth in bytes/second.
func (s *SocketSpec) MemoryBandwidth() (float64, error) {
	if s.Memory == nil {
		return 0, fmt.Errorf("aspen: socket %s has no memory", s.Name)
	}
	bw, err := numProperty(s.Memory, "bandwidth", 0)
	if err != nil {
		return 0, err
	}
	if bw <= 0 {
		return 0, fmt.Errorf("aspen: memory %s lacks a positive bandwidth property", s.Memory.Name)
	}
	return bw, nil
}

// LinkTime returns the transfer time for the given byte volume over the
// socket's link, including one latency charge.
func (s *SocketSpec) LinkTime(bytes float64) (float64, error) {
	if s.Link == nil {
		return 0, fmt.Errorf("aspen: socket %s has no link", s.Name)
	}
	bw, err := numProperty(s.Link, "bandwidth", 0)
	if err != nil {
		return 0, err
	}
	if bw <= 0 {
		return 0, fmt.Errorf("aspen: link %s lacks a positive bandwidth property", s.Link.Name)
	}
	lat, err := numProperty(s.Link, "latency", 0)
	if err != nil {
		return 0, err
	}
	return lat + bytes/bw, nil
}

// ResourceDef looks up a custom resource definition by name across the
// socket's core.
func (s *SocketSpec) ResourceDef(name string) *ResourceDef {
	if s.Core == nil {
		return nil
	}
	for _, r := range s.Core.Resources {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// CustomResourceTime evaluates a custom resource consumption (e.g. QuOps) to
// seconds: the definition expression runs with the quantity bound to the
// first declared argument.
func (s *SocketSpec) CustomResourceTime(name string, amount float64) (float64, error) {
	def := s.ResourceDef(name)
	if def == nil {
		return 0, fmt.Errorf("aspen: socket %s does not define resource %q", s.Name, name)
	}
	env := Env{}
	if len(def.Args) > 0 {
		env[def.Args[0]] = amount
	}
	v, err := EvalExpr(def.Expr, env)
	if err != nil {
		return 0, fmt.Errorf("aspen: resource %s on socket %s: %w", name, s.Name, err)
	}
	return v, nil
}

// Socket returns the named socket spec, or nil.
func (m *MachineSpec) Socket(name string) *SocketSpec {
	for _, s := range m.Sockets {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FindCustomResource returns the first socket defining the named custom
// resource, or nil.
func (m *MachineSpec) FindCustomResource(name string) *SocketSpec {
	for _, s := range m.Sockets {
		if s.ResourceDef(name) != nil {
			return s
		}
	}
	return nil
}

// index collects component declarations by kind and name for resolution.
type declIndex struct {
	nodes, sockets, cores, memories, links map[string]*ComponentDecl
	machines                               map[string]*MachineDecl
}

func indexFile(f *File) *declIndex {
	ix := &declIndex{
		nodes:    map[string]*ComponentDecl{},
		sockets:  map[string]*ComponentDecl{},
		cores:    map[string]*ComponentDecl{},
		memories: map[string]*ComponentDecl{},
		links:    map[string]*ComponentDecl{},
		machines: map[string]*MachineDecl{},
	}
	for _, d := range f.Nodes {
		ix.nodes[d.Name] = d
	}
	for _, d := range f.Sockets {
		ix.sockets[d.Name] = d
	}
	for _, d := range f.Cores {
		ix.cores[d.Name] = d
	}
	for _, d := range f.Memories {
		ix.memories[d.Name] = d
	}
	for _, d := range f.Links {
		ix.links[d.Name] = d
	}
	for _, m := range f.Machines {
		ix.machines[m.Name] = m
	}
	return ix
}

// BuildMachine resolves the named machine declaration of a fully-included
// file into a MachineSpec. When name is empty the file's sole machine is
// used.
func BuildMachine(f *File, name string) (*MachineSpec, error) {
	ix := indexFile(f)
	var decl *MachineDecl
	switch {
	case name != "":
		decl = ix.machines[name]
		if decl == nil {
			return nil, fmt.Errorf("aspen: machine %q not declared", name)
		}
	case len(f.Machines) == 1:
		decl = f.Machines[0]
	case len(f.Machines) == 0:
		return nil, fmt.Errorf("aspen: no machine declaration in file")
	default:
		return nil, fmt.Errorf("aspen: %d machines declared, name required", len(f.Machines))
	}

	spec := &MachineSpec{Name: decl.Name, NodeCount: 1}
	var nodeDecl *ComponentDecl
	for _, ref := range decl.SubRefs {
		if ref.Kind != "nodes" {
			continue
		}
		nodeDecl = ix.nodes[ref.Type]
		if nodeDecl == nil {
			return nil, fmt.Errorf("aspen: machine %s references undeclared node %q", decl.Name, ref.Type)
		}
		if ref.Count != nil {
			c, err := EvalExpr(ref.Count, nil)
			if err != nil {
				return nil, err
			}
			spec.NodeCount = c
		}
		break
	}
	if nodeDecl == nil {
		return nil, fmt.Errorf("aspen: machine %s declares no nodes", decl.Name)
	}
	spec.NodeName = nodeDecl.Name

	for _, ref := range nodeDecl.SubRefs {
		if ref.Kind != "sockets" {
			continue
		}
		sdecl := ix.sockets[ref.Type]
		if sdecl == nil {
			return nil, fmt.Errorf("aspen: node %s references undeclared socket %q", nodeDecl.Name, ref.Type)
		}
		sock, err := buildSocket(ix, sdecl)
		if err != nil {
			return nil, err
		}
		spec.Sockets = append(spec.Sockets, sock)
	}
	if len(spec.Sockets) == 0 {
		return nil, fmt.Errorf("aspen: node %s declares no sockets", nodeDecl.Name)
	}
	return spec, nil
}

func buildSocket(ix *declIndex, sdecl *ComponentDecl) (*SocketSpec, error) {
	sock := &SocketSpec{Name: sdecl.Name, CoreCount: 1}
	for _, sub := range sdecl.SubRefs {
		switch sub.Kind {
		case "cores":
			core := ix.cores[sub.Type]
			if core == nil {
				return nil, fmt.Errorf("aspen: socket %s references undeclared core %q", sdecl.Name, sub.Type)
			}
			sock.Core = core
			sock.CoreName = core.Name
			if sub.Count != nil {
				c, err := EvalExpr(sub.Count, nil)
				if err != nil {
					return nil, err
				}
				sock.CoreCount = c
			}
		case "memory", "memories":
			mem := ix.memories[sub.Type]
			if mem == nil {
				return nil, fmt.Errorf("aspen: socket %s references undeclared memory %q", sdecl.Name, sub.Type)
			}
			sock.Memory = mem
		case "link", "links":
			lnk := ix.links[sub.Type]
			if lnk == nil {
				return nil, fmt.Errorf("aspen: socket %s references undeclared link %q", sdecl.Name, sub.Type)
			}
			sock.Link = lnk
		}
	}
	for _, ln := range sdecl.LinkedWith {
		lnk := ix.links[ln]
		if lnk == nil {
			return nil, fmt.Errorf("aspen: socket %s linked with undeclared link %q", sdecl.Name, ln)
		}
		sock.Link = lnk
	}
	return sock, nil
}
