// Package aspen implements a from-scratch interpreter for an
// ASPEN-compatible performance-modeling language. ASPEN (Spafford & Vetter,
// SC'12) is a domain-specific language for structured analytical performance
// modeling: applications are expressed as kernels that consume abstract
// resources (flops, loads, stores, communication, custom resources such as
// quantum operations), and machines are expressed as hierarchies of nodes,
// sockets, cores, memories and links with capability properties. Evaluating
// an application model against a machine model yields predicted runtimes.
//
// The original ASPEN tool is closed; this package defines a documented
// subset sufficient to parse and evaluate every model listing in the paper
// (machine model Fig. 5, application models Figs. 6-8) plus the control
// constructs (iterate, sequential kernel calls) needed for extensions. See
// DESIGN.md for the exact semantics of resource-to-time conversion.
package aspen

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokLParen   // (
	TokRParen   // )
	TokComma    // ,
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokCaret    // ^
	TokPath     // include path like memory/ddr3_1066.aspen
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokAssign:
		return "'='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokCaret:
		return "'^'"
	case TokPath:
		return "path"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q at %d:%d", t.Kind, t.Text, t.Line, t.Col)
	}
	return fmt.Sprintf("%s at %d:%d", t.Kind, t.Line, t.Col)
}

// lexer tokenizes ASPEN source.
type lexer struct {
	src        string
	pos        int
	line, col  int
	includeArg bool // the token after 'include' is a raw path
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes an entire source string, primarily for tests.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("aspen: %d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.advance()
			lx.advance()
			for {
				c, ok := lx.peekByte()
				if !ok {
					return lx.errorf("unterminated block comment")
				}
				if c == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	c, ok := lx.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}

	if lx.includeArg {
		// Raw path token: everything up to whitespace.
		lx.includeArg = false
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				break
			}
			lx.advance()
		}
		return Token{Kind: TokPath, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}

	switch {
	case isIdentStart(rune(c)):
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(rune(c)) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if text == "include" {
			lx.includeArg = true
		}
		return Token{Kind: TokIdent, Text: text, Line: line, Col: col}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		start := lx.pos
		seenDot, seenExp := false, false
		for {
			c, ok := lx.peekByte()
			if !ok {
				break
			}
			switch {
			case unicode.IsDigit(rune(c)):
				lx.advance()
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				lx.advance()
			case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
				seenExp = true
				lx.advance()
				if n, ok := lx.peekByte(); ok && (n == '+' || n == '-') {
					lx.advance()
				}
			default:
				goto doneNumber
			}
		}
	doneNumber:
		text := lx.src[start:lx.pos]
		if text == "." {
			return Token{}, lx.errorf("stray '.'")
		}
		return Token{Kind: TokNumber, Text: text, Line: line, Col: col}, nil
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			c, ok := lx.peekByte()
			if !ok || c == '\n' {
				return Token{}, lx.errorf("unterminated string")
			}
			lx.advance()
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil
	}

	lx.advance()
	kind, ok := map[byte]TokenKind{
		'{': TokLBrace, '}': TokRBrace,
		'[': TokLBracket, ']': TokRBracket,
		'(': TokLParen, ')': TokRParen,
		',': TokComma, '=': TokAssign,
		'+': TokPlus, '-': TokMinus,
		'*': TokStar, '/': TokSlash,
		'^': TokCaret,
	}[c]
	if !ok {
		return Token{}, lx.errorf("unexpected character %q", c)
	}
	return Token{Kind: kind, Text: string(c), Line: line, Col: col}, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
