package aspen

import (
	"fmt"
	"math"
)

// Env binds identifiers to values during expression evaluation.
type Env map[string]float64

// Clone copies the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// EvalExpr evaluates an expression under env. Unknown identifiers and
// malformed calls return errors rather than panicking, so model bugs surface
// with source context.
func EvalExpr(e Expr, env Env) (float64, error) {
	switch x := e.(type) {
	case *NumberLit:
		return x.Value, nil
	case *Ident:
		v, ok := env[x.Name]
		if !ok {
			return 0, fmt.Errorf("aspen: undefined identifier %q", x.Name)
		}
		return v, nil
	case *Unary:
		v, err := EvalExpr(x.X, env)
		if err != nil {
			return 0, err
		}
		if x.Op != "-" {
			return 0, fmt.Errorf("aspen: unknown unary operator %q", x.Op)
		}
		return -v, nil
	case *Binary:
		a, err := EvalExpr(x.X, env)
		if err != nil {
			return 0, err
		}
		b, err := EvalExpr(x.Y, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("aspen: division by zero in %s", e)
			}
			return a / b, nil
		case "^":
			return math.Pow(a, b), nil
		}
		return 0, fmt.Errorf("aspen: unknown operator %q", x.Op)
	case *Call:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := EvalExpr(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return evalCall(x.Fn, args)
	}
	return 0, fmt.Errorf("aspen: unknown expression node %T", e)
}

func evalCall(fn string, args []float64) (float64, error) {
	unary := func(f func(float64) float64) (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("aspen: %s expects 1 argument, got %d", fn, len(args))
		}
		return f(args[0]), nil
	}
	binary := func(f func(a, b float64) float64) (float64, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("aspen: %s expects 2 arguments, got %d", fn, len(args))
		}
		return f(args[0], args[1]), nil
	}
	switch fn {
	case "log":
		return unary(math.Log)
	case "log2":
		return unary(math.Log2)
	case "log10":
		return unary(math.Log10)
	case "exp":
		return unary(math.Exp)
	case "sqrt":
		return unary(math.Sqrt)
	case "ceil":
		return unary(math.Ceil)
	case "floor":
		return unary(math.Floor)
	case "round":
		return unary(math.Round)
	case "abs":
		return unary(math.Abs)
	case "min":
		return binary(math.Min)
	case "max":
		return binary(math.Max)
	case "pow":
		return binary(math.Pow)
	}
	return 0, fmt.Errorf("aspen: unknown function %q", fn)
}

// EvalParams evaluates a model's parameter declarations in order under the
// given external overrides (the "Input Parameter" values). Each parameter
// may reference previously defined ones. Overridden parameters keep the
// override value; their declared expression is not evaluated.
func EvalParams(m *ModelDecl, overrides map[string]float64) (Env, error) {
	env := make(Env, len(m.Params)+len(overrides))
	declared := make(map[string]bool, len(m.Params))
	for _, p := range m.Params {
		declared[p.Name] = true
	}
	for name := range overrides {
		if !declared[name] {
			return nil, fmt.Errorf("aspen: override for unknown parameter %q in model %s", name, m.Name)
		}
	}
	for _, p := range m.Params {
		if v, ok := overrides[p.Name]; ok {
			env[p.Name] = v
			continue
		}
		v, err := EvalExpr(p.Expr, env)
		if err != nil {
			return nil, fmt.Errorf("aspen: param %s of model %s: %w", p.Name, m.Name, err)
		}
		env[p.Name] = v
	}
	return env, nil
}
