package aspen

import "fmt"

// File is a parsed ASPEN source file: a sequence of top-level declarations.
type File struct {
	Includes []string
	Models   []*ModelDecl
	Machines []*MachineDecl
	Nodes    []*ComponentDecl // node declarations
	Sockets  []*ComponentDecl // socket declarations
	Cores    []*ComponentDecl // core declarations
	Memories []*ComponentDecl // memory declarations
	Links    []*ComponentDecl // link declarations
}

// ModelDecl is an application model: parameters, data declarations and
// kernels. Execution starts at the kernel named "main".
type ModelDecl struct {
	Name    string
	Params  []*ParamDecl
	Data    []*DataDecl
	Kernels []*KernelDecl
}

// Kernel returns the kernel with the given name, or nil.
func (m *ModelDecl) Kernel(name string) *KernelDecl {
	for _, k := range m.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// ParamDecl is `param NAME = expr`.
type ParamDecl struct {
	Name string
	Expr Expr
}

// DataDecl is `data NAME as Array(count, elemBytes)`.
type DataDecl struct {
	Name      string
	Count     Expr
	ElemBytes Expr
}

// KernelDecl is `kernel NAME { stmt... }`.
type KernelDecl struct {
	Name string
	Body []Stmt
}

// Stmt is a kernel-body statement: an execute block, a kernel call, or an
// iterate loop.
type Stmt interface{ stmtNode() }

// ExecuteStmt is `execute [label] [count] { resource... }`.
type ExecuteStmt struct {
	Label     string // optional block label
	Count     Expr   // repetition count (defaults to 1)
	Resources []*ResourceStmt
}

// CallStmt invokes another kernel of the same model by name.
type CallStmt struct {
	Name string
}

// IterateStmt is `iterate [count] { stmt... }`, repeating its body.
type IterateStmt struct {
	Count Expr
	Body  []Stmt
}

// ParStmt is `par { stmt... }`: its statements execute concurrently, so the
// block costs the maximum of its branch times (each top-level statement is
// one branch).
type ParStmt struct {
	Body []Stmt
}

func (*ExecuteStmt) stmtNode() {}
func (*CallStmt) stmtNode()    {}
func (*IterateStmt) stmtNode() {}
func (*ParStmt) stmtNode()     {}

// ResourceStmt is one resource consumption line inside an execute block:
//
//	verb [quantity] (as trait, trait...)? (to NAME)? (from NAME)? (of size [expr])?
//
// e.g. `flops [Ising] as sp, fmad, simd` or `loads [Results] of size [4*L]`.
type ResourceStmt struct {
	Verb     string
	Quantity Expr
	Traits   []string
	To       string
	From     string
	ElemSize Expr // nil unless `of size [...]` present
}

// ComponentDecl is a hardware component declaration: node, socket, core,
// memory or link. Its body may contain sub-component references, properties,
// resource definitions and `linked with` clauses.
type ComponentDecl struct {
	Kind       string // "node", "socket", "core", "memory", "link"
	Name       string
	SubRefs    []*SubComponentRef
	Properties []*PropertyDecl
	Resources  []*ResourceDef
	LinkedWith []string
}

// Property returns the named property expression, or nil.
func (c *ComponentDecl) Property(name string) Expr {
	for _, p := range c.Properties {
		if p.Name == name {
			return p.Expr
		}
	}
	return nil
}

// SubComponentRef is `[count] TYPE kind` (e.g. `[1] Vesuvius cores`) or a
// bare `TYPE kind` (e.g. `gddr5 memory`).
type SubComponentRef struct {
	Count Expr   // nil means 1
	Type  string // referenced component name
	Kind  string // "nodes", "sockets", "cores", "memory", "link"
}

// PropertyDecl is `property NAME [expr]`.
type PropertyDecl struct {
	Name string
	Expr Expr
}

// ResourceDef is `resource NAME(arg,...) [expr]`: a custom resource whose
// consumption converts to seconds by evaluating expr with the call-site
// quantity bound to the first argument.
type ResourceDef struct {
	Name string
	Args []string
	Expr Expr
}

// MachineDecl is `machine NAME { [n] TYPE nodes ... }`.
type MachineDecl struct {
	Name    string
	SubRefs []*SubComponentRef
}

// Expr is an arithmetic expression over numbers, parameters and calls.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// Ident references a parameter (or a resource-definition argument).
type Ident struct{ Name string }

// Unary is -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is x OP y for OP in + - * / ^.
type Binary struct {
	Op   string
	X, Y Expr
}

// Call is f(args...) for the built-in math functions.
type Call struct {
	Fn   string
	Args []Expr
}

func (*NumberLit) exprNode() {}
func (*Ident) exprNode()     {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Call) exprNode()      {}

func (n *NumberLit) String() string { return trimFloat(n.Value) }
func (i *Ident) String() string     { return i.Name }
func (u *Unary) String() string     { return fmt.Sprintf("(%s%s)", u.Op, u.X) }
func (b *Binary) String() string    { return fmt.Sprintf("(%s %s %s)", b.X, b.Op, b.Y) }
func (c *Call) String() string {
	s := c.Fn + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
