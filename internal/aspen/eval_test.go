package aspen

import (
	"math"
	"testing"
)

func simpleMachine(t *testing.T) *MachineSpec {
	t.Helper()
	m, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadSimpleNode(t *testing.T) {
	m := simpleMachine(t)
	if m.Name != "SimpleNode" || m.NodeName != "SIMPLE" {
		t.Errorf("machine = %+v", m)
	}
	if len(m.Sockets) != 3 {
		t.Fatalf("sockets = %d, want 3 (CPU, GPU, QPU)", len(m.Sockets))
	}
	if m.Socket("intel_xeon_e5_2680") == nil || m.Socket("DwaveVesuvius20") == nil {
		t.Error("expected sockets missing")
	}
	if m.FindCustomResource("QuOps") == nil {
		t.Error("QuOps resource not found")
	}
	if m.FindCustomResource("FluxOps") != nil {
		t.Error("phantom resource found")
	}
}

func TestXeonFlopsRates(t *testing.T) {
	cpu := simpleMachine(t).Socket("intel_xeon_e5_2680")
	// Scalar SP: 8 cores × 2.7 GHz = 21.6 GF/s.
	r, err := cpu.FlopsRate([]string{"sp"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-21.6e9) > 1 {
		t.Errorf("scalar sp = %v", r)
	}
	// SP SIMD: ×8 = 172.8 GF/s.
	r, _ = cpu.FlopsRate([]string{"sp", "simd"})
	if math.Abs(r-172.8e9) > 1 {
		t.Errorf("sp simd = %v", r)
	}
	// SP SIMD FMA: ×2 = 345.6 GF/s (peak).
	r, _ = cpu.FlopsRate([]string{"sp", "simd", "fmad"})
	if math.Abs(r-345.6e9) > 1 {
		t.Errorf("sp simd fmad = %v", r)
	}
	// DP SIMD: 4-wide = 86.4 GF/s.
	r, _ = cpu.FlopsRate([]string{"dp", "simd"})
	if math.Abs(r-86.4e9) > 1 {
		t.Errorf("dp simd = %v", r)
	}
	// Default precision is dp.
	rDefault, _ := cpu.FlopsRate(nil)
	rDP, _ := cpu.FlopsRate([]string{"dp"})
	if rDefault != rDP {
		t.Errorf("default %v != dp %v", rDefault, rDP)
	}
}

func TestQuOpsConversion(t *testing.T) {
	qpu := simpleMachine(t).Socket("DwaveVesuvius20")
	// Fig. 5: QuOps(number) = number × 20 µs.
	sec, err := qpu.CustomResourceTime("QuOps", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sec-100*20e-6) > 1e-12 {
		t.Errorf("100 QuOps = %v s, want 2 ms", sec)
	}
	if _, err := qpu.CustomResourceTime("NoOps", 1); err == nil {
		t.Error("undefined resource accepted")
	}
}

func TestEvaluateSimpleModel(t *testing.T) {
	src := `
model Tiny {
  param Work = 172.8e9
  kernel hot {
    execute [1] {
      flops [Work] as sp, simd
    }
  }
  kernel main { hot }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 172.8e9 flops at 172.8 GF/s = exactly 1 second.
	if math.Abs(res.TotalSeconds()-1) > 1e-9 {
		t.Errorf("total = %v s, want 1", res.TotalSeconds())
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Name != "hot" {
		t.Errorf("kernels: %+v", res.Kernels)
	}
}

func TestEvaluateMemoryAndLink(t *testing.T) {
	src := `
model Move {
  data Buf as Array(1000, 4)
  kernel main {
    execute [1] {
      loads [34.1e9] from Buf
      intracomm [8e9] as copyout
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 34.1 GB over DDR3 (1 s) + 8 GB over PCIe (1 s + 5 µs latency).
	if math.Abs(res.TotalSeconds()-2.000005) > 1e-9 {
		t.Errorf("total = %v", res.TotalSeconds())
	}
	by := res.ByVerb()
	if math.Abs(by["loads"]-1) > 1e-9 || math.Abs(by["intracomm"]-1.000005) > 1e-9 {
		t.Errorf("per-verb: %v", by)
	}
}

func TestEvaluateQuOpsModel(t *testing.T) {
	src := `
model Q {
  param Reads = 50
  kernel main {
    execute [1] { QuOps [Reads] }
    execute [1] { microseconds [320] }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 50*20e-6 + 320e-6
	if math.Abs(res.TotalSeconds()-want) > 1e-12 {
		t.Errorf("total = %v, want %v", res.TotalSeconds(), want)
	}
}

func TestEvaluateCountAndIterate(t *testing.T) {
	src := `
model C {
  kernel body { execute [2] { microseconds [10] } }
  kernel main {
    iterate [3] { body }
    execute [4] { microseconds [1] }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := (3*2*10 + 4*1) * 1e-6
	if math.Abs(res.TotalSeconds()-want) > 1e-15 {
		t.Errorf("total = %v, want %v", res.TotalSeconds(), want)
	}
}

func TestEvaluateOverlapPolicy(t *testing.T) {
	src := `
model O {
  kernel main {
    execute [1] {
      microseconds [100]
      microseconds [40]
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{Policy: Serial})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{Policy: Overlap})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.TotalSeconds()-140e-6) > 1e-15 {
		t.Errorf("serial = %v", serial.TotalSeconds())
	}
	if math.Abs(overlap.TotalSeconds()-100e-6) > 1e-15 {
		t.Errorf("overlap = %v", overlap.TotalSeconds())
	}
}

func TestEvaluateErrors(t *testing.T) {
	mach := simpleMachine(t)
	cases := map[string]string{
		"no main":          `model M { kernel other { execute [1] { microseconds [1] } } }`,
		"undefined kernel": `model M { kernel main { ghost } }`,
		"recursion":        `model M { kernel a { b } kernel b { a } kernel main { a } }`,
		"unknown resource": `model M { kernel main { execute [1] { blorps [5] } } }`,
		"negative count":   `model M { kernel main { execute [0-2] { microseconds [1] } } }`,
		"bad param":        `model M { param X = 1/0 kernel main { execute [1] { microseconds [X] } } }`,
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := Evaluate(f.Models[0], mach, EvalOptions{}); err == nil {
			t.Errorf("%s: evaluation succeeded", name)
		}
	}
}

func TestEvaluateHostSocketOverride(t *testing.T) {
	src := `model H { kernel main { execute [1] { flops [1.33e12] as sp, fmad } } }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// On the GPU socket: 512 cores × 1.3 GHz × fmad 2 = 1.3312 TF/s → ~1 s.
	res, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{HostSocket: "nvidia_m2090"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalSeconds()-1.33e12/1.3312e12) > 1e-9 {
		t.Errorf("gpu total = %v", res.TotalSeconds())
	}
	if _, err := Evaluate(f.Models[0], simpleMachine(t), EvalOptions{HostSocket: "nope"}); err == nil {
		t.Error("bad socket accepted")
	}
}

func TestBuildMachineErrors(t *testing.T) {
	cases := map[string]string{
		"no machine":     `node N { [1] s sockets } socket s { }`,
		"missing node":   `machine M { [1] ghost nodes }`,
		"missing socket": `machine M { [1] N nodes } node N { [1] ghost sockets }`,
		"no sockets":     `machine M { [1] N nodes } node N { }`,
		"no nodes":       `machine M { }`,
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := BuildMachine(f, ""); err == nil {
			t.Errorf("%s: BuildMachine succeeded", name)
		}
	}
}

func TestBuildMachineByName(t *testing.T) {
	src := `
machine A { [1] N nodes }
machine B { [2] N nodes }
node N { [1] S sockets }
socket S { [4] C cores }
core C { property clock [1e9] }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMachine(f, ""); err == nil {
		t.Error("ambiguous machine accepted")
	}
	b, err := BuildMachine(f, "B")
	if err != nil {
		t.Fatal(err)
	}
	if b.NodeCount != 2 {
		t.Errorf("node count = %v", b.NodeCount)
	}
	if b.Sockets[0].CoreCount != 4 {
		t.Errorf("core count = %v", b.Sockets[0].CoreCount)
	}
}

func TestParseWithIncludesDeduplicates(t *testing.T) {
	// Both socket includes pull in links/pcie.aspen; the link must appear
	// once.
	f, err := ParseWithIncludes(SimpleNodeSource, StdLoader)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, l := range f.Links {
		if l.Name == "pcie" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("pcie declared %d times", count)
	}
}

func TestStdLoaderUnknownPath(t *testing.T) {
	if _, err := StdLoader("no/such.aspen"); err == nil {
		t.Error("unknown include accepted")
	}
	if _, err := ParseWithIncludes("include no/such.aspen", StdLoader); err == nil {
		t.Error("unknown include in source accepted")
	}
	if _, err := ParseWithIncludes("include x.aspen", nil); err == nil {
		t.Error("nil loader with include accepted")
	}
}
