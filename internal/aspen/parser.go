package aspen

import (
	"fmt"
	"strconv"
)

// Parse parses a complete ASPEN source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

// ParseExpr parses a standalone arithmetic expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("trailing input after expression: %s", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos+1 < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("aspen: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.peek().Kind != kind {
		return Token{}, p.errorf("expected %s, found %s", kind, p.peek())
	}
	return p.advance(), nil
}

func (p *parser) expectIdent(text string) error {
	t := p.peek()
	if t.Kind != TokIdent || t.Text != text {
		return p.errorf("expected %q, found %s", text, t)
	}
	p.advance()
	return nil
}

// componentKinds maps declaration keywords to ComponentDecl kinds.
var componentKinds = map[string]bool{
	"node": true, "socket": true, "core": true, "memory": true, "link": true, "cache": true,
}

// subComponentKinds are the trailing kind words of sub-component references.
var subComponentKinds = map[string]bool{
	"nodes": true, "sockets": true, "cores": true, "memory": true,
	"memories": true, "link": true, "links": true, "caches": true,
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for {
		t := p.peek()
		if t.Kind == TokEOF {
			return f, nil
		}
		if t.Kind != TokIdent {
			return nil, p.errorf("expected declaration, found %s", t)
		}
		switch t.Text {
		case "include":
			p.advance()
			path, err := p.expect(TokPath)
			if err != nil {
				return nil, err
			}
			f.Includes = append(f.Includes, path.Text)
		case "model":
			m, err := p.parseModel()
			if err != nil {
				return nil, err
			}
			f.Models = append(f.Models, m)
		case "machine":
			m, err := p.parseMachine()
			if err != nil {
				return nil, err
			}
			f.Machines = append(f.Machines, m)
		default:
			if !componentKinds[t.Text] {
				return nil, p.errorf("unknown declaration %q", t.Text)
			}
			c, err := p.parseComponent()
			if err != nil {
				return nil, err
			}
			switch c.Kind {
			case "node":
				f.Nodes = append(f.Nodes, c)
			case "socket":
				f.Sockets = append(f.Sockets, c)
			case "core":
				f.Cores = append(f.Cores, c)
			case "memory", "cache":
				f.Memories = append(f.Memories, c)
			case "link":
				f.Links = append(f.Links, c)
			}
		}
	}
}

func (p *parser) parseModel() (*ModelDecl, error) {
	p.advance() // 'model'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	m := &ModelDecl{Name: name.Text}
	for {
		t := p.peek()
		if t.Kind == TokRBrace {
			p.advance()
			return m, nil
		}
		if t.Kind != TokIdent {
			return nil, p.errorf("expected model member, found %s", t)
		}
		switch t.Text {
		case "param":
			p.advance()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &ParamDecl{Name: id.Text, Expr: e})
		case "data":
			d, err := p.parseData()
			if err != nil {
				return nil, err
			}
			m.Data = append(m.Data, d)
		case "kernel":
			k, err := p.parseKernel()
			if err != nil {
				return nil, err
			}
			m.Kernels = append(m.Kernels, k)
		default:
			return nil, p.errorf("unknown model member %q", t.Text)
		}
	}
}

func (p *parser) parseData() (*DataDecl, error) {
	p.advance() // 'data'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("as"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("Array"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	count, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	elem, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &DataDecl{Name: name.Text, Count: count, ElemBytes: elem}, nil
}

func (p *parser) parseKernel() (*KernelDecl, error) {
	p.advance() // 'kernel'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	return &KernelDecl{Name: name.Text, Body: body}, nil
}

// parseStmts parses kernel-body statements up to (and consuming) '}'.
func (p *parser) parseStmts() ([]Stmt, error) {
	var body []Stmt
	for {
		t := p.peek()
		if t.Kind == TokRBrace {
			p.advance()
			return body, nil
		}
		if t.Kind != TokIdent {
			return nil, p.errorf("expected statement, found %s", t)
		}
		switch t.Text {
		case "execute":
			s, err := p.parseExecute()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		case "iterate":
			p.advance()
			if _, err := p.expect(TokLBracket); err != nil {
				return nil, err
			}
			count, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			inner, err := p.parseStmts()
			if err != nil {
				return nil, err
			}
			body = append(body, &IterateStmt{Count: count, Body: inner})
		case "par":
			p.advance()
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			inner, err := p.parseStmts()
			if err != nil {
				return nil, err
			}
			body = append(body, &ParStmt{Body: inner})
		default:
			p.advance()
			body = append(body, &CallStmt{Name: t.Text})
		}
	}
}

func (p *parser) parseExecute() (Stmt, error) {
	p.advance() // 'execute'
	st := &ExecuteStmt{Count: &NumberLit{Value: 1}}
	if p.peek().Kind == TokIdent {
		st.Label = p.advance().Text
	}
	if p.peek().Kind == TokLBracket {
		p.advance()
		count, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		st.Count = count
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokRBrace {
			p.advance()
			return st, nil
		}
		r, err := p.parseResource()
		if err != nil {
			return nil, err
		}
		st.Resources = append(st.Resources, r)
	}
}

func (p *parser) parseResource() (*ResourceStmt, error) {
	verb, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	qty, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	r := &ResourceStmt{Verb: verb.Text, Quantity: qty}
	for {
		t := p.peek()
		if t.Kind != TokIdent {
			return r, nil
		}
		switch t.Text {
		case "as":
			p.advance()
			for {
				trait, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				r.Traits = append(r.Traits, trait.Text)
				if p.peek().Kind != TokComma {
					break
				}
				p.advance()
			}
		case "to":
			p.advance()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			r.To = id.Text
		case "from":
			p.advance()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			r.From = id.Text
		case "of":
			p.advance()
			if err := p.expectIdent("size"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBracket); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			r.ElemSize = e
		default:
			return r, nil
		}
	}
}

func (p *parser) parseMachine() (*MachineDecl, error) {
	p.advance() // 'machine'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	m := &MachineDecl{Name: name.Text}
	for {
		t := p.peek()
		if t.Kind == TokRBrace {
			p.advance()
			return m, nil
		}
		ref, err := p.parseSubRef()
		if err != nil {
			return nil, err
		}
		m.SubRefs = append(m.SubRefs, ref)
	}
}

func (p *parser) parseSubRef() (*SubComponentRef, error) {
	ref := &SubComponentRef{}
	if p.peek().Kind == TokLBracket {
		p.advance()
		count, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		ref.Count = count
	}
	typ, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	ref.Type = typ.Text
	kind, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if !subComponentKinds[kind.Text] {
		return nil, p.errorf("unknown sub-component kind %q", kind.Text)
	}
	ref.Kind = kind.Text
	return ref, nil
}

func (p *parser) parseComponent() (*ComponentDecl, error) {
	kind := p.advance().Text // node/socket/core/memory/link/cache
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	c := &ComponentDecl{Kind: kind, Name: name.Text}
	for {
		t := p.peek()
		if t.Kind == TokRBrace {
			p.advance()
			return c, nil
		}
		switch {
		case t.Kind == TokIdent && t.Text == "property":
			p.advance()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBracket); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			c.Properties = append(c.Properties, &PropertyDecl{Name: id.Text, Expr: e})
		case t.Kind == TokIdent && t.Text == "resource":
			p.advance()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			def := &ResourceDef{Name: id.Text}
			if p.peek().Kind == TokLParen {
				p.advance()
				for p.peek().Kind != TokRParen {
					arg, err := p.expect(TokIdent)
					if err != nil {
						return nil, err
					}
					def.Args = append(def.Args, arg.Text)
					if p.peek().Kind == TokComma {
						p.advance()
					}
				}
				p.advance() // ')'
			}
			if _, err := p.expect(TokLBracket); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			def.Expr = e
			c.Resources = append(c.Resources, def)
		case t.Kind == TokIdent && t.Text == "linked":
			p.advance()
			if err := p.expectIdent("with"); err != nil {
				return nil, err
			}
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			c.LinkedWith = append(c.LinkedWith, id.Text)
		case t.Kind == TokLBracket || (t.Kind == TokIdent && p.peek2().Kind == TokIdent && subComponentKinds[p.peek2().Text]):
			ref, err := p.parseSubRef()
			if err != nil {
				return nil, err
			}
			c.SubRefs = append(c.SubRefs, ref)
		default:
			return nil, p.errorf("unexpected token in %s %s: %s", kind, name.Text, t)
		}
	}
}

// --- expressions -----------------------------------------------------------

// parseExpr parses additive expressions.
func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokPlus, TokMinus:
			op := p.advance().Text
			y, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			x = &Binary{Op: op, X: x, Y: y}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokStar, TokSlash:
			op := p.advance().Text
			y, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			x = &Binary{Op: op, X: x, Y: y}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().Kind == TokMinus {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePower()
}

// parsePower parses right-associative exponentiation.
func (p *parser) parsePower() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokCaret {
		p.advance()
		y, err := p.parseUnary() // right associative, allows -x exponents
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "^", X: x, Y: y}, nil
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", t.Text, err)
		}
		return &NumberLit{Value: v}, nil
	case TokIdent:
		p.advance()
		if p.peek().Kind == TokLParen {
			p.advance()
			call := &Call{Fn: t.Text}
			for p.peek().Kind != TokRParen {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.peek().Kind == TokComma {
					p.advance()
				}
			}
			p.advance() // ')'
			return call, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("expected expression, found %s", t)
}
