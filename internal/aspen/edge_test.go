package aspen

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestResultHelpers(t *testing.T) {
	src := `
model H {
  kernel work { execute [1] { seconds [2] milliseconds [500] } }
  kernel main { work }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], mach, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds() != 2.5 {
		t.Errorf("total = %v", res.TotalSeconds())
	}
	if res.Total() != 2500*time.Millisecond {
		t.Errorf("duration = %v", res.Total())
	}
	if res.Kernel("work") == nil || res.Kernel("ghost") != nil {
		t.Error("Kernel lookup wrong")
	}
}

func TestTimeUnitVerbs(t *testing.T) {
	src := `
model U {
  kernel main {
    execute [1] {
      seconds [1]
      milliseconds [1]
      microseconds [1]
      nanoseconds [1]
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], mach, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 1e-3 + 1e-6 + 1e-9
	if math.Abs(res.TotalSeconds()-want) > 1e-15 {
		t.Errorf("total = %v, want %v", res.TotalSeconds(), want)
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"a": 1}
	c := e.Clone()
	c["a"] = 2
	if e["a"] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []TokenKind{TokEOF, TokIdent, TokNumber, TokString, TokLBrace, TokRBrace,
		TokLBracket, TokRBracket, TokLParen, TokRParen, TokComma, TokAssign,
		TokPlus, TokMinus, TokStar, TokSlash, TokCaret, TokPath, TokenKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", int(k))
		}
	}
	tok := Token{Kind: TokIdent, Text: "x", Line: 1, Col: 2}
	if !strings.Contains(tok.String(), "x") {
		t.Errorf("token string %q", tok.String())
	}
	empty := Token{Kind: TokEOF, Line: 3, Col: 4}
	if !strings.Contains(empty.String(), "EOF") {
		t.Errorf("EOF token string %q", empty.String())
	}
}

func TestExprStringForms(t *testing.T) {
	e := mustParseExpr(t, "-min(a, 2) ^ (b + 1.5)")
	s := e.String()
	for _, frag := range []string{"min", "a", "2", "b", "1.5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}

func TestMachineCapabilityErrors(t *testing.T) {
	src := `
core noclock { property issue_sp [2] }
core badprop { property clock [1/0] }
memory nobw { property capacity [1] }
link nolink { property latency [1] }
socket s1 { [1] noclock cores }
socket s2 { [1] badprop cores nobw memory linked with nolink }
machine M { [1] N nodes }
node N {
  [1] s1 sockets
  [1] s2 sockets
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildMachine(f, "M")
	if err != nil {
		t.Fatal(err)
	}
	s1 := m.Socket("s1")
	if _, err := s1.FlopsRate([]string{"sp"}); err == nil {
		t.Error("core without clock accepted")
	}
	if _, err := s1.MemoryBandwidth(); err == nil {
		t.Error("socket without memory accepted")
	}
	if _, err := s1.LinkTime(1); err == nil {
		t.Error("socket without link accepted")
	}
	s2 := m.Socket("s2")
	if _, err := s2.FlopsRate(nil); err == nil {
		t.Error("bad clock property accepted")
	}
	if _, err := s2.MemoryBandwidth(); err == nil {
		t.Error("memory without bandwidth accepted")
	}
	if _, err := s2.LinkTime(1); err == nil {
		t.Error("link without bandwidth accepted")
	}
}

func TestSocketWithoutCoreForFlops(t *testing.T) {
	src := `
memory mem { property bandwidth [1e9] }
socket memOnly { mem memory }
machine M { [1] N nodes }
node N { [1] memOnly sockets }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildMachine(f, "M")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Socket("memOnly").FlopsRate(nil); err == nil {
		t.Error("flops on coreless socket accepted")
	}
	if m.Socket("memOnly").ResourceDef("QuOps") != nil {
		t.Error("phantom resource def")
	}
	if _, err := m.Socket("memOnly").CustomResourceTime("QuOps", 1); err == nil {
		t.Error("custom resource on coreless socket accepted")
	}
}

func TestBuildSocketReferenceErrors(t *testing.T) {
	cases := map[string]string{
		"missing core":   `machine M {[1] N nodes} node N {[1] S sockets} socket S {[1] ghost cores}`,
		"missing memory": `machine M {[1] N nodes} node N {[1] S sockets} socket S {ghost memory}`,
		"missing link":   `machine M {[1] N nodes} node N {[1] S sockets} socket S {linked with ghost}`,
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := BuildMachine(f, "M"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestIntracommFallsBackToHostLink(t *testing.T) {
	// Single socket with a link: intracomm must use the host's own link.
	src := `
link l { property bandwidth [1e9] }
core c { property clock [1e9] }
memory m { property bandwidth [1e9] }
socket s { [1] c cores m memory linked with l }
machine M { [1] N nodes }
node N { [1] s sockets }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := BuildMachine(f, "M")
	if err != nil {
		t.Fatal(err)
	}
	model := `
model X { kernel main { execute [1] { intracomm [1e9] as copyout } } }
`
	mf, err := Parse(model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(mf.Models[0], mach, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalSeconds()-1) > 1e-12 {
		t.Errorf("intracomm via host link = %v s", res.TotalSeconds())
	}
}

func TestEvaluateElemSizeErrors(t *testing.T) {
	mach, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"bad size expr": `model M { kernel main { execute [1] { loads [1] of size [nope] } } }`,
		"bad quantity":  `model M { kernel main { execute [1] { flops [nope] } } }`,
		"negative qty":  `model M { kernel main { execute [1] { microseconds [0-5] } } }`,
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Evaluate(f.Models[0], mach, EvalOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseDataErrors(t *testing.T) {
	cases := []string{
		`model M { data D as Array(3) }`,   // missing elem size
		`model M { data D as Array }`,      // missing parens
		`model M { data as Array(1,2) }`,   // missing name
		`model M { data D is Array(1,2) }`, // wrong keyword
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
