package aspen

import (
	"math"
	"strings"
	"testing"
)

func mustParseExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func evalIn(t *testing.T, src string, env Env) float64 {
	t.Helper()
	v, err := EvalExpr(mustParseExpr(t, src), env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprPrecedence(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":        7,
		"(1 + 2) * 3":      9,
		"2 ^ 3 ^ 2":        512, // right associative
		"2 * 3 ^ 2":        18,
		"-2 ^ 2":           -4, // unary minus binds looser than ^
		"10 - 4 - 3":       3,  // left associative
		"8 / 4 / 2":        1,
		"ceil(1.2) + 1":    3,
		"min(3, max(1,2))": 2,
		"log(exp(2))":      2,
		"pow(2, 10)":       1024,
		"sqrt(9)":          3,
		"floor(-1.5)":      -2,
		"abs(-4)":          4,
		"log2(8)":          3,
		"log10(1000)":      3,
		"round(2.5)":       3,
	}
	for src, want := range cases {
		if got := evalIn(t, src, nil); math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestExprIdentifiers(t *testing.T) {
	env := Env{"LPS": 10}
	if got := evalIn(t, "LPS^2 + LPS", env); got != 110 {
		t.Errorf("got %v", got)
	}
	if _, err := EvalExpr(mustParseExpr(t, "missing + 1"), env); err == nil {
		t.Error("undefined identifier accepted")
	}
}

func TestExprErrors(t *testing.T) {
	if _, err := ParseExpr("1 +"); err == nil {
		t.Error("dangling operator accepted")
	}
	if _, err := ParseExpr("(1"); err == nil {
		t.Error("unbalanced paren accepted")
	}
	if _, err := ParseExpr("1 2"); err == nil {
		t.Error("trailing input accepted")
	}
	if _, err := EvalExpr(mustParseExpr(t, "1/0"), nil); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := EvalExpr(mustParseExpr(t, "nosuch(1)"), nil); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := EvalExpr(mustParseExpr(t, "log(1,2)"), nil); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestParseModelStructure(t *testing.T) {
	src := `
model Demo {
  param N = 4
  param Work = N^2

  data Buf as Array(N, 8)

  kernel compute {
    execute [2] {
      flops [Work] as sp, simd
      loads [N*8] from Buf
    }
  }

  kernel main {
    compute
    iterate [3] { compute }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Models) != 1 {
		t.Fatalf("models = %d", len(f.Models))
	}
	m := f.Models[0]
	if m.Name != "Demo" || len(m.Params) != 2 || len(m.Data) != 1 || len(m.Kernels) != 2 {
		t.Fatalf("model shape: %+v", m)
	}
	if m.Kernel("compute") == nil || m.Kernel("nope") != nil {
		t.Error("Kernel lookup wrong")
	}
	ex, ok := m.Kernel("compute").Body[0].(*ExecuteStmt)
	if !ok {
		t.Fatalf("first stmt is %T", m.Kernel("compute").Body[0])
	}
	if len(ex.Resources) != 2 {
		t.Fatalf("resources = %d", len(ex.Resources))
	}
	fl := ex.Resources[0]
	if fl.Verb != "flops" || len(fl.Traits) != 2 || fl.Traits[0] != "sp" || fl.Traits[1] != "simd" {
		t.Errorf("flops stmt: %+v", fl)
	}
	ld := ex.Resources[1]
	if ld.Verb != "loads" || ld.From != "Buf" {
		t.Errorf("loads stmt: %+v", ld)
	}
	if _, ok := m.Kernel("main").Body[1].(*IterateStmt); !ok {
		t.Errorf("second main stmt is %T", m.Kernel("main").Body[1])
	}
}

func TestParseExecuteLabelForms(t *testing.T) {
	src := `
model L {
  kernel main {
    execute [1] { microseconds [5] }
    execute labeled [2] { microseconds [5] }
    execute mainblock2[1] { microseconds [5] }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	main := f.Models[0].Kernel("main")
	ex0 := main.Body[0].(*ExecuteStmt)
	ex1 := main.Body[1].(*ExecuteStmt)
	ex2 := main.Body[2].(*ExecuteStmt)
	if ex0.Label != "" || ex1.Label != "labeled" || ex2.Label != "mainblock2" {
		t.Errorf("labels: %q %q %q", ex0.Label, ex1.Label, ex2.Label)
	}
}

func TestParseResourceClauses(t *testing.T) {
	src := `
model R {
  data Out as Array(10, 4)
  kernel main {
    execute [1] {
      loads [7] of size [4*3]
      stores [7] to Out
      intracomm [100] as copyout
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := f.Models[0].Kernel("main").Body[0].(*ExecuteStmt).Resources
	if res[0].ElemSize == nil {
		t.Error("of size clause lost")
	}
	if res[1].To != "Out" {
		t.Errorf("to clause: %q", res[1].To)
	}
	if len(res[2].Traits) != 1 || res[2].Traits[0] != "copyout" {
		t.Errorf("intracomm traits: %v", res[2].Traits)
	}
}

func TestParseMachineAndComponents(t *testing.T) {
	f, err := Parse(SimpleNodeSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Machines) != 1 || f.Machines[0].Name != "SimpleNode" {
		t.Fatalf("machines: %+v", f.Machines)
	}
	if len(f.Nodes) != 1 || len(f.Nodes[0].SubRefs) != 3 {
		t.Fatalf("node decl: %+v", f.Nodes)
	}
	if len(f.Includes) != 4 {
		t.Errorf("includes = %v", f.Includes)
	}
}

func TestParseSocketWithResource(t *testing.T) {
	src := `
core Vesuvius20 {
  resource QuOps(number) [number * 20/1000000]
}
socket DwaveVesuvius20 {
  [1] Vesuvius20 cores
  linked with pcie
}
link pcie { property bandwidth [8e9] }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cores) != 1 || len(f.Cores[0].Resources) != 1 {
		t.Fatalf("cores: %+v", f.Cores)
	}
	rd := f.Cores[0].Resources[0]
	if rd.Name != "QuOps" || len(rd.Args) != 1 || rd.Args[0] != "number" {
		t.Errorf("resource def: %+v", rd)
	}
	if len(f.Sockets[0].LinkedWith) != 1 || f.Sockets[0].LinkedWith[0] != "pcie" {
		t.Errorf("linked with: %v", f.Sockets[0].LinkedWith)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"model {",                             // missing name
		"model M { param = 3 }",               // missing param name
		"model M { kernel main { execute } }", // missing block
		"model M { data D as List(3,4) }",     // not Array
		"machine M { [1] N widgets }",         // unknown kind
		"gadget G {}",                         // unknown decl
		"model M { param x = }",               // empty expr
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestEvalParamsOrderAndOverrides(t *testing.T) {
	src := `
model P {
  param A = 2
  param B = A * 10
  kernel main { execute [1] { microseconds [B] } }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env, err := EvalParams(f.Models[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if env["B"] != 20 {
		t.Errorf("B = %v", env["B"])
	}
	env, err = EvalParams(f.Models[0], map[string]float64{"A": 5})
	if err != nil {
		t.Fatal(err)
	}
	if env["B"] != 50 {
		t.Errorf("override: B = %v", env["B"])
	}
	if _, err := EvalParams(f.Models[0], map[string]float64{"Zed": 1}); err == nil {
		t.Error("unknown override accepted")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	e := mustParseExpr(t, "ceil(log(1-(A/100))/log(1-S))")
	s := e.String()
	for _, frag := range []string{"ceil", "log", "A", "100", "S"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	// The printed form must re-parse to the same value.
	env := Env{"A": 99.0, "S": 0.7}
	v1, err := EvalExpr(e, env)
	if err != nil {
		t.Fatal(err)
	}
	v2 := evalIn(t, s, env)
	if math.Abs(v1-v2) > 1e-12 {
		t.Errorf("round trip: %v vs %v", v1, v2)
	}
}
