// Package loadgen replays a workload.Scenario against the *live* dispatch
// service — the measurement half of the open-system workload engine. Where
// internal/des predicts response-time distributions in virtual time, the
// load generator realizes the same scenario in wall-clock time: the same
// per-job classes and profiles (workload.Scenario.JobAt), the same arrival
// offsets, submitted to a running internal/service either in process or
// over TCP via service.Dial. Tests pin the measured sojourn distribution
// inside a tolerance band of the DES prediction — the open-system analog of
// the closed-batch makespan regression.
package loadgen

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/stats"
	"github.com/splitexec/splitexec/internal/workload"
)

// Options select the target service and transport.
type Options struct {
	// Service, when non-nil, submits jobs in process. Size its QueueDepth
	// for the offered load: a full queue blocks Submit and distorts the
	// arrival process.
	Service *service.Service
	// Addr, when non-empty, dials the service's TCP front-end instead.
	// Exactly one of Service and Addr must be set.
	Addr string
	// Conns is the TCP connection pool size (Addr mode); a job waits for
	// a free connection before submitting, so the pool should exceed the
	// expected number of jobs in flight. Values <= 0 select 16.
	Conns int
	// Timeout bounds each TCP round trip (0 = none). It must cover queue
	// wait plus service, not just service.
	Timeout time.Duration
	// Fleet, when non-nil, is the fault-injection handle for scenarios
	// with device faults: the load generator replays the scenario's
	// deterministic outage schedules against this service's fleet in wall
	// time. In-process runs default it to Service; Addr runs that inject
	// device faults must set it to the serving side's *service.Service
	// (the storm runner owns both halves and does exactly that).
	Fleet *service.Service
	// Fleets, when non-empty, are the per-shard fault handles of a
	// federated deployment (Addr pointing at a router front end). Device
	// outage streams use the cluster's global device numbering — shard
	// index × per-shard fleet size + local device — the same streams the
	// DES consumes for cluster scenarios, so both sides kill the same
	// (shard, device) pairs in the same order. Takes precedence over
	// Fleet.
	Fleets []*service.Service
	// Obs, when non-nil, is the telemetry scope the generator publishes
	// into: offered/completed/failed/drop counters and the client-observed
	// sojourn histogram into its registry, and completed sojourns into its
	// drift alarm — the client-side feed of the DES-drift loop, useful when
	// the serving side runs in another process.
	Obs *obs.Scope
}

// measure is one submission's server-reported measurements: the per-job
// waits, the server-side retry count, and — behind a router front end — the
// routing metadata the router stamped on the response.
type measure struct {
	queueWait time.Duration
	qpuWait   time.Duration
	retries   int
	routing   *service.WireRouting
}

// jobRecord is one measured job.
type jobRecord struct {
	queueWait    time.Duration
	qpuWait      time.Duration
	sojourn      time.Duration
	retries      int
	drops        int
	stolen       bool
	redispatches int
	err          error
}

// Result aggregates one load-generation run in the same shape as the DES
// Result, so measured-vs-simulated comparison is field-for-field.
type Result struct {
	Scenario string `json:"scenario,omitempty"`
	Jobs     int    `json:"jobs"`
	Failed   int    `json:"failed"`

	// Elapsed is first-arrival to last-completion wall time; Throughput
	// is completed jobs over Elapsed.
	Elapsed    time.Duration `json:"elapsed"`
	Throughput float64       `json:"throughput"`

	// QueueWait and QPUWait are the service's own per-job measurements;
	// Sojourn is client-observed: scheduled arrival to completion.
	QueueWait stats.DurationSummary `json:"queueWait"`
	QPUWait   stats.DurationSummary `json:"qpuWait"`
	Sojourn   stats.DurationSummary `json:"sojourn"`

	// Retries counts server-side lease-revocation retries, Drops the
	// wire-path connection drops the generator realized — both zero
	// outside a fault regime, both mirroring the DES Result fields.
	Retries int `json:"retries,omitempty"`
	Drops   int `json:"drops,omitempty"`

	// Router-tier routing metadata, aggregated from the WireRouting each
	// routed response carries: jobs the steal rule diverted off their home
	// shard, and shard-loss re-dispatches consumed. Both zero against a
	// direct (un-routed) service, whose responses carry no routing. These
	// reconcile with the router's own Stats and /jobz spans — the post-run
	// report and the live endpoint cite the same per-job facts.
	Stolen       int `json:"stolen,omitempty"`
	Redispatched int `json:"redispatched,omitempty"`
}

// submitter abstracts the two transports behind one blocking call. The
// class attributes let the service's scheduler realize the scenario's
// policy on live jobs exactly as the DES does in virtual time.
type submitter func(p arch.JobProfile, class service.JobClass) (measure, error)

// classOf extracts the scheduling attributes of a sampled job from the
// scenario mix.
func classOf(sc *workload.Scenario, job workload.Job) service.JobClass {
	c := sc.Mix[job.Class]
	return service.JobClass{Class: job.Class, Priority: c.Priority, Weight: c.Weight}
}

// Run replays the scenario against the configured service and blocks until
// every admitted job has completed.
func Run(sc *workload.Scenario, opts Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if (opts.Service == nil) == (opts.Addr == "") {
		return nil, fmt.Errorf("loadgen: exactly one of Service and Addr must be set")
	}

	submit := opts.inProcess
	if opts.Addr != "" {
		pool, closePool, err := dialPool(opts)
		if err != nil {
			return nil, err
		}
		defer closePool()
		submit = pool
	}

	// Device faults: replay the scenario's deterministic outage schedules
	// against the fleet in wall time. The schedules are the same DeriveSeed
	// streams the DES consumes, so both sides kill the same devices in the
	// same order.
	fleet := opts.Fleet
	if fleet == nil {
		fleet = opts.Service
	}
	if sc.HasDeviceFaults() {
		if len(opts.Fleets) > 0 {
			for x, f := range opts.Fleets {
				stop := f.StartOutages(outagePlansAt(sc, f.FleetSize(), x*f.FleetSize()))
				defer stop()
			}
		} else if fleet != nil {
			stop := fleet.StartOutages(outagePlans(sc, fleet.FleetSize()))
			defer stop()
		}
	}
	backoff := sc.RetryBackoff()

	// Telemetry handles, resolved once; all nil (and free) without a scope.
	reg := opts.Obs.Registry()
	lgSubmitted := reg.Counter("splitexec_loadgen_submitted_total")
	lgCompleted := reg.Counter("splitexec_loadgen_completed_total")
	lgFailed := reg.Counter("splitexec_loadgen_failed_total")
	lgDrops := reg.Counter("splitexec_loadgen_drops_total")
	lgSojourn := reg.Histogram("splitexec_loadgen_sojourn_seconds", nil)
	// The drift alarm takes the client-observed feed only against a remote
	// target: in-process the service shares the scope and feeds the alarm
	// itself, and a second feed would double-count every sojourn.
	drift := opts.Obs.DriftAlarm()
	if opts.Addr == "" {
		drift = nil
	}

	var (
		records []jobRecord
		mu      sync.Mutex
		wg      sync.WaitGroup
		start   = time.Now()
	)
	record := func(r jobRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	}
	// launch runs one job end to end: it charges lateness between the
	// scheduled arrival and the actual submission to the sojourn, exactly
	// as the DES charges queueing from the arrival instant. The job's
	// deterministic drop plan (workload.DropPlanFor) is realized first:
	// each dropped attempt severs a TCP connection mid-request (Addr mode)
	// and burns the retry backoff; a fatal plan fails the job without it
	// ever reaching the service — mirroring the DES drop/fail events.
	launch := func(idx int, plannedAt time.Time) {
		defer wg.Done()
		plan := sc.DropPlanFor(idx)
		lgDrops.Add(int64(plan.Drops))
		for d := 0; d < plan.Drops; d++ {
			if opts.Addr != "" {
				dropConnection(opts.Addr, opts.Timeout)
			}
			if plan.Fatal && d == plan.Drops-1 {
				lgFailed.Inc()
				record(jobRecord{drops: plan.Drops, err: errDropped})
				return
			}
			sleepUntil(time.Now().Add(backoff))
		}
		job := sc.JobAt(idx)
		lgSubmitted.Inc()
		m, err := submit(job.Profile, classOf(sc, job))
		if err != nil {
			lgFailed.Inc()
			record(jobRecord{drops: plan.Drops, err: err})
			return
		}
		sojourn := time.Since(plannedAt)
		lgCompleted.Inc()
		lgSojourn.Observe(sojourn)
		drift.Observe(job.Class, sojourn)
		rec := jobRecord{queueWait: m.queueWait, qpuWait: m.qpuWait, sojourn: sojourn,
			retries: m.retries, drops: plan.Drops}
		if m.routing != nil {
			rec.stolen = m.routing.Stolen
			rec.redispatches = m.routing.Redispatches
		}
		record(rec)
	}

	if sc.Arrival.Kind == workload.ClosedLoop {
		runClosedLoop(sc, start, &wg, launch)
	} else {
		gen, err := sc.Arrivals()
		if err != nil {
			return nil, err
		}
		limit := sc.Horizon.Jobs
		timeLimit := sc.Horizon.Duration.D()
		for i := 0; limit == 0 || i < limit; i++ {
			off, ok := gen.Next()
			if !ok {
				break
			}
			if timeLimit > 0 && off > timeLimit {
				break
			}
			plannedAt := start.Add(off)
			sleepUntil(plannedAt)
			wg.Add(1)
			go launch(i, plannedAt)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := &Result{Scenario: sc.Name, Elapsed: elapsed}
	queue := make([]time.Duration, 0, len(records))
	qpu := make([]time.Duration, 0, len(records))
	sojourn := make([]time.Duration, 0, len(records))
	for _, rec := range records {
		r.Retries += rec.retries
		r.Drops += rec.drops
		r.Redispatched += rec.redispatches
		if rec.stolen {
			r.Stolen++
		}
		if rec.err != nil {
			r.Failed++
			continue
		}
		queue = append(queue, rec.queueWait)
		qpu = append(qpu, rec.qpuWait)
		sojourn = append(sojourn, rec.sojourn)
	}
	r.Jobs = len(sojourn)
	r.QueueWait = stats.SummarizeDurations(queue)
	r.QPUWait = stats.SummarizeDurations(qpu)
	r.Sojourn = stats.SummarizeDurations(sojourn)
	if elapsed > 0 {
		r.Throughput = float64(r.Jobs) / elapsed.Seconds()
	}
	return r, nil
}

// runClosedLoop drives Clients concurrent submitters: submit, wait, think,
// repeat, until the horizon (job count or duration) closes intake.
func runClosedLoop(sc *workload.Scenario, start time.Time, wg *sync.WaitGroup, launch func(int, time.Time)) {
	var next atomic.Int64
	limit := sc.Horizon.Jobs
	timeLimit := sc.Horizon.Duration.D()
	think := sc.Arrival.Think.D()
	var clients sync.WaitGroup
	for c := 0; c < sc.Arrival.Clients; c++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for {
				idx := int(next.Add(1)) - 1
				if limit > 0 && idx >= limit {
					return
				}
				if timeLimit > 0 && time.Since(start) > timeLimit {
					return
				}
				wg.Add(1)
				launch(idx, time.Now()) // synchronous: the client waits its job out
				if think > 0 {
					sleepUntil(time.Now().Add(think))
				}
			}
		}()
	}
	clients.Wait()
}

// sleepUntil paces to a scheduled instant with the service's calibrated
// sub-tick sleep: plain time.Sleep quantizes to the kernel tick, which at
// hundreds of arrivals per second would smear every scheduled arrival a
// millisecond late.
func sleepUntil(deadline time.Time) {
	service.SleepPrecise(time.Until(deadline))
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// errDropped marks a job whose whole submission budget was lost on the wire.
var errDropped = fmt.Errorf("loadgen: every submission attempt dropped")

// dropConnection realizes one wire-path connection drop against the live
// TCP front-end: it dials, writes half a frame (a length prefix promising
// more bytes than follow) and severs the connection, so the server walks
// its mid-request failure path. Best effort — the fault is the point, so
// errors are ignored.
func dropConnection(addr string, timeout time.Duration) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], 64) // promise 64 payload bytes...
	conn.Write(prefix[:])
	conn.Write([]byte(`{"di`)) // ...deliver four, then hang up mid-frame
	conn.Close()
}

// outagePlans materializes the scenario's per-device outage schedules out
// to a horizon safely past the workload's drain point; Drain/stop restores
// any device still down when the run ends.
func outagePlans(sc *workload.Scenario, fleet int) [][]service.Outage {
	return outagePlansAt(sc, fleet, 0)
}

// outagePlansAt is outagePlans with a global device-number base — shard x of
// a cluster draws streams base = x × per-shard fleet size, matching the
// DES's global numbering.
func outagePlansAt(sc *workload.Scenario, fleet, base int) [][]service.Outage {
	until := outageHorizon(sc)
	plans := make([][]service.Outage, fleet)
	for dev := 0; dev < fleet; dev++ {
		for _, o := range sc.OutageSchedule(base+dev, until) {
			plans[dev] = append(plans[dev], service.Outage{At: o.At, For: o.For})
		}
	}
	return plans
}

// outageHorizon bounds the materialized outage schedule: twice the declared
// duration horizon, or twice the expected arrival span of a job-count
// horizon, plus slack for the completion tail.
func outageHorizon(sc *workload.Scenario) time.Duration {
	const slack = 5 * time.Second
	if sc.Horizon.Duration > 0 {
		return 2*sc.Horizon.Duration.D() + slack
	}
	if r := sc.Arrival.MeanRate(); r > 0 && sc.Horizon.Jobs > 0 {
		return 2*time.Duration(float64(sc.Horizon.Jobs)/r*float64(time.Second)) + slack
	}
	return 30 * time.Second
}

// inProcess submits one profile job through the service API.
func (o Options) inProcess(p arch.JobProfile, class service.JobClass) (measure, error) {
	t, err := o.Service.SubmitProfileClass(p, class)
	if err != nil {
		return measure{}, err
	}
	if _, err := t.Wait(); err != nil {
		return measure{}, err
	}
	m := t.Metrics()
	return measure{queueWait: m.QueueWait, qpuWait: m.QPUWait, retries: m.Retries}, nil
}

// dialPool builds a pool of TCP clients and returns a submitter drawing
// from it plus a closer.
func dialPool(opts Options) (submitter, func(), error) {
	conns := opts.Conns
	if conns <= 0 {
		conns = 16
	}
	pool := make(chan *service.Client, conns)
	for i := 0; i < conns; i++ {
		c, err := service.DialTimeout(opts.Addr, opts.Timeout)
		if err != nil {
			// Close what we already dialed.
			for len(pool) > 0 {
				(<-pool).Close()
			}
			return nil, nil, fmt.Errorf("loadgen: dialing connection %d: %w", i, err)
		}
		if opts.Timeout > 0 {
			c.SetTimeout(opts.Timeout)
		}
		pool <- c
	}
	submit := func(p arch.JobProfile, class service.JobClass) (measure, error) {
		c := <-pool
		defer func() { pool <- c }()
		resp, err := c.ProfileClass(p, class)
		if err != nil {
			return measure{}, err
		}
		return measure{
			queueWait: time.Duration(resp.QueueWaitUS) * time.Microsecond,
			qpuWait:   time.Duration(resp.QPUWaitUS) * time.Microsecond,
			retries:   resp.Retries,
			routing:   resp.Routing,
		}, nil
	}
	closer := func() {
		for i := 0; i < conns; i++ {
			(<-pool).Close()
		}
	}
	return submit, closer, nil
}
