package loadgen

import (
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// Live fault replay: the load generator must realize the same deterministic
// fault schedules the DES consumes, and the live ledgers must match the
// plan-derived expectations exactly — not statistically.

// TestLiveDropPlansRealized: in-process replay of a drop regime. The
// realized drop and failure counts must equal the sums over the per-job
// deterministic plans, and the service ledger must conserve submissions.
func TestLiveDropPlansRealized(t *testing.T) {
	sc := openScenario(2, 80)
	sc.Faults = &workload.FaultSpec{DropProb: 0.25, MaxRetries: 2, Backoff: workload.Duration(500 * time.Microsecond)}

	wantDrops, wantFatal := 0, 0
	for i := 0; i < sc.Horizon.Jobs; i++ {
		p := sc.DropPlanFor(i)
		wantDrops += p.Drops
		if p.Fatal {
			wantFatal++
		}
	}
	if wantDrops == 0 || wantFatal == 0 {
		t.Fatalf("degenerate plan: %d drops, %d fatal — pick a different seed", wantDrops, wantFatal)
	}

	svc, err := service.New(service.Options{Workers: 2, QueueDepth: 80, Fleet: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(sc, Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	rep := svc.Drain()

	if got.Drops != wantDrops {
		t.Errorf("drops %d != %d planned", got.Drops, wantDrops)
	}
	if got.Failed != wantFatal {
		t.Errorf("failed %d != %d fatal plans", got.Failed, wantFatal)
	}
	if got.Jobs+got.Failed != sc.Horizon.Jobs {
		t.Errorf("generator ledger leak: %d + %d != %d", got.Jobs, got.Failed, sc.Horizon.Jobs)
	}
	// Fatally dropped jobs never reach the service, so the service saw
	// exactly the surviving jobs — and all of them completed.
	if rep.Submitted != sc.Horizon.Jobs-wantFatal {
		t.Errorf("service saw %d submissions, want %d", rep.Submitted, sc.Horizon.Jobs-wantFatal)
	}
	if rep.Jobs+rep.Failed != rep.Submitted {
		t.Errorf("service ledger leak: %d + %d != %d", rep.Jobs, rep.Failed, rep.Submitted)
	}
	// The DES realizes the identical plans.
	sim, err := des.Simulate(sc, des.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Drops != got.Drops || sim.Failed != got.Failed {
		t.Errorf("DES ledger (drops %d, failed %d) != live ledger (drops %d, failed %d)",
			sim.Drops, sim.Failed, got.Drops, got.Failed)
	}
}

// TestLiveDeviceFaultsConserve: an in-process replay under device outages
// must complete or fail every job exactly once, with retries visible in both
// ledgers, even when the single device spends much of the run dead.
func TestLiveDeviceFaultsConserve(t *testing.T) {
	sc := openScenario(2, 60)
	sc.Seed = 19
	sc.Faults = &workload.FaultSpec{
		DeviceMTBF:     workload.Duration(80 * time.Millisecond),
		DeviceDowntime: workload.Duration(15 * time.Millisecond),
		MaxRetries:     workload.MaxRetryLimit, // nothing may fail, only retry
		Backoff:        workload.Duration(time.Millisecond),
	}
	svc, err := service.New(service.Options{
		Workers: 2, QueueDepth: 60, Fleet: 1,
		MaxRetries: workload.MaxRetryLimit, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(sc, Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	rep := svc.Drain()
	if got.Failed != 0 || got.Jobs != sc.Horizon.Jobs {
		t.Errorf("generator: %d jobs, %d failed; want all %d complete", got.Jobs, got.Failed, sc.Horizon.Jobs)
	}
	if rep.Jobs+rep.Failed != rep.Submitted {
		t.Errorf("service ledger leak: %d + %d != %d", rep.Jobs, rep.Failed, rep.Submitted)
	}
	if got.Retries != rep.Retries {
		t.Errorf("generator saw %d retries, service ledger %d", got.Retries, rep.Retries)
	}
}
