package loadgen

import (
	"fmt"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// The measured-vs-simulated tolerance band of the open-system regression:
// at low utilization the live replay carries scheduler and sleep overhead
// on top of the DES's exact virtual time, so the band is asymmetric — an
// undershoot below 0.8 would mean the service skipped work, an overshoot
// past 1.7 that dispatch overhead is no longer small against the job cost.
const (
	bandLo = 0.80
	bandHi = 1.70
)

// openScenario is a deterministic single-class Poisson workload at low
// utilization: rho ~ 0.2 per host, millisecond-scale jobs.
func openScenario(hosts, jobs int) *workload.Scenario {
	return &workload.Scenario{
		Name:    fmt.Sprintf("live-open-h%d", hosts),
		Seed:    11,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 100 * float64(hosts)},
		Mix: []workload.JobClass{{
			Name: "base", Weight: 1,
			Profile: workload.Profile{
				PreProcess:  workload.Duration(1200 * time.Microsecond),
				QPUService:  workload.Duration(500 * time.Microsecond),
				PostProcess: workload.Duration(300 * time.Microsecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "shared", Hosts: hosts},
		Horizon: workload.Horizon{Jobs: jobs},
	}
}

func checkBand(t *testing.T, label string, measured, predicted time.Duration) {
	t.Helper()
	ratio := float64(measured) / float64(predicted)
	t.Logf("%s: measured %v, DES %v (ratio %.3f)", label, measured, predicted, ratio)
	if !withinBand(measured, predicted) {
		t.Errorf("%s: measured %v outside [%.2f, %.2f]× DES prediction %v (ratio %.3f)",
			label, measured, bandLo, bandHi, predicted, ratio)
	}
}

func withinBand(measured, predicted time.Duration) bool {
	ratio := float64(measured) / float64(predicted)
	return ratio >= bandLo && ratio <= bandHi
}

// bandAttempts bounds the wall-clock flake retries of the live band gates.
// The p99 of a ~100-job replay moves by several hundred microseconds when
// the OS preempts the (possibly single, possibly race-instrumented) test
// core at the wrong moment; a few retries absorb such spikes while a
// systematic dispatch bug still fails every attempt. Four attempts because
// a full-suite run on a loaded single core has been seen to spike three in
// a row by a marginal ~3%.
const bandAttempts = 4

// measureLive replays sc against a fresh service built from opts and
// returns the loadgen result and the drain report, failing the test on any
// structural error (incomplete jobs, failures).
func measureLive(t *testing.T, sc *workload.Scenario, opts service.Options, jobs int) (*Result, service.Report) {
	t.Helper()
	svc, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(sc, Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	rep := svc.Drain()
	if got.Jobs != jobs || got.Failed != 0 {
		t.Fatalf("loadgen completed %d jobs (%d failed), want %d", got.Jobs, got.Failed, jobs)
	}
	if rep.Jobs != jobs {
		t.Fatalf("service completed %d jobs, want %d", rep.Jobs, jobs)
	}
	return got, rep
}

// TestLiveMatchesDES is the acceptance gate: replaying the same scenario
// through the real dispatch service must land the measured mean and p99
// sojourn within the tolerance band of the DES prediction, at Hosts 1 and 4.
func TestLiveMatchesDES(t *testing.T) {
	for _, hosts := range []int{1, 4} {
		t.Run(fmt.Sprintf("hosts=%d", hosts), func(t *testing.T) {
			jobs := 80 * hosts
			sc := openScenario(hosts, jobs)
			pred, err := des.Simulate(sc, des.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts := service.Options{Workers: hosts, Fleet: 1, QueueDepth: jobs}
			var got *Result
			var rep service.Report
			for attempt := 1; ; attempt++ {
				got, rep = measureLive(t, sc, opts, jobs)
				if withinBand(got.Sojourn.Mean, pred.Sojourn.Mean) && withinBand(got.Sojourn.P99, pred.Sojourn.P99) {
					break
				}
				if attempt == bandAttempts {
					break
				}
				t.Logf("attempt %d outside band (mean %v, p99 %v vs DES %v, %v); retrying once",
					attempt, got.Sojourn.Mean, got.Sojourn.P99, pred.Sojourn.Mean, pred.Sojourn.P99)
			}
			checkBand(t, "mean sojourn", got.Sojourn.Mean, pred.Sojourn.Mean)
			checkBand(t, "p99 sojourn", got.Sojourn.P99, pred.Sojourn.P99)
			// The service's own sojourn ledger must agree with the
			// client-observed one (it misses only pre-submit lateness).
			if rep.Sojourn.Mean > got.Sojourn.Mean+time.Millisecond {
				t.Errorf("service sojourn %v exceeds client-observed %v", rep.Sojourn.Mean, got.Sojourn.Mean)
			}
		})
	}
}

// policyScenario is a two-class mix at moderate utilization (~0.6/host):
// enough backlog for the queue discipline to matter (and for the DES p99 to
// reflect real queueing rather than a bare service time, which would make
// the band ratio hostage to microsecond scheduler jitter), stable enough
// for the measured-vs-simulated band to hold.
func policyScenario(policy sched.Policy, hosts, jobs int) *workload.Scenario {
	return &workload.Scenario{
		Name:    fmt.Sprintf("live-%s-h%d", sched.Normalize(policy), hosts),
		Seed:    29,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 400 * float64(hosts)},
		Mix: []workload.JobClass{
			{
				Name: "interactive", Weight: 3, Priority: 5,
				Profile: workload.Profile{
					PreProcess:  workload.Duration(800 * time.Microsecond),
					QPUService:  workload.Duration(300 * time.Microsecond),
					PostProcess: workload.Duration(100 * time.Microsecond),
				},
			},
			{
				Name: "batch", Weight: 1, Priority: 0,
				Profile: workload.Profile{
					PreProcess: workload.Duration(1500 * time.Microsecond),
					QPUService: workload.Duration(900 * time.Microsecond),
				},
			},
		},
		System:  workload.SystemSpec{Kind: "shared", Hosts: hosts},
		Horizon: workload.Horizon{Jobs: jobs},
		Policy:  policy,
	}
}

// TestLiveMatchesDESPerPolicy is the policy-layer acceptance gate: for every
// queue discipline, replaying the scenario through the real dispatch service
// (constructed with the same policy) must land the measured mean and p99
// sojourn within the same tolerance band of the DES prediction, at Hosts ∈
// {1, 4} — evidence the simulator and the live dispatcher realize the *same*
// policy, not merely two plausible ones.
func TestLiveMatchesDESPerPolicy(t *testing.T) {
	for _, policy := range sched.Policies() {
		for _, hosts := range []int{1, 4} {
			policy, hosts := policy, hosts
			t.Run(fmt.Sprintf("%s/hosts=%d", policy, hosts), func(t *testing.T) {
				jobs := 150 * hosts
				sc := policyScenario(policy, hosts, jobs)
				pred, err := des.Simulate(sc, des.Options{})
				if err != nil {
					t.Fatal(err)
				}
				opts := service.Options{
					Workers:    hosts,
					Fleet:      1,
					QueueDepth: jobs,
					Policy:     policy,
				}
				var got *Result
				for attempt := 1; ; attempt++ {
					got, _ = measureLive(t, sc, opts, jobs)
					if withinBand(got.Sojourn.Mean, pred.Sojourn.Mean) && withinBand(got.Sojourn.P99, pred.Sojourn.P99) {
						break
					}
					if attempt == bandAttempts {
						break
					}
					t.Logf("attempt %d outside band (mean %v, p99 %v vs DES %v, %v); retrying once",
						attempt, got.Sojourn.Mean, got.Sojourn.P99, pred.Sojourn.Mean, pred.Sojourn.P99)
				}
				checkBand(t, "mean sojourn", got.Sojourn.Mean, pred.Sojourn.Mean)
				checkBand(t, "p99 sojourn", got.Sojourn.P99, pred.Sojourn.P99)
			})
		}
	}
}

// tcpBandHi relaxes the upper band for the TCP path: JSON framing and
// per-connection goroutines add real overhead that grows when the test
// shares a single core with other test binaries. The tight acceptance band
// is pinned by the in-process TestLiveMatchesDES above; this test's job is
// the wire path — metrics round-tripping and every job completing.
const tcpBandHi = 2.2

// TestLiveOverTCP replays a small scenario through the TCP front-end: the
// wire metrics must round-trip and the sojourn band still hold with the
// framing overhead included.
func TestLiveOverTCP(t *testing.T) {
	const hosts, jobs = 2, 60
	sc := openScenario(hosts, jobs)
	pred, err := des.Simulate(sc, des.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Options{Workers: hosts, Fleet: 1, QueueDepth: jobs})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	got, err := Run(sc, Options{Addr: addr.String(), Conns: 8, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != jobs || got.Failed != 0 {
		t.Fatalf("completed %d jobs (%d failed), want %d", got.Jobs, got.Failed, jobs)
	}
	ratio := float64(got.Sojourn.Mean) / float64(pred.Sojourn.Mean)
	t.Logf("TCP mean sojourn: measured %v, DES %v (ratio %.3f)", got.Sojourn.Mean, pred.Sojourn.Mean, ratio)
	if ratio < bandLo || ratio > tcpBandHi {
		t.Errorf("TCP mean sojourn %v outside [%.2f, %.2f]× DES prediction %v (ratio %.3f)",
			got.Sojourn.Mean, bandLo, tcpBandHi, pred.Sojourn.Mean, ratio)
	}
	if got.Throughput <= 0 {
		t.Errorf("throughput %v", got.Throughput)
	}
}

// TestClosedLoopLive: a zero-think closed loop saturates the hosts, so the
// live throughput must track the DES prediction for the same scenario.
func TestClosedLoopLive(t *testing.T) {
	sc := &workload.Scenario{
		Name:    "live-closed",
		Seed:    4,
		Arrival: workload.Arrival{Kind: workload.ClosedLoop, Clients: 4, Think: workload.Duration(200 * time.Microsecond)},
		Mix: []workload.JobClass{{
			Name: "base", Weight: 1,
			Profile: workload.Profile{
				PreProcess: workload.Duration(800 * time.Microsecond),
				QPUService: workload.Duration(400 * time.Microsecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "shared", Hosts: 2},
		Horizon: workload.Horizon{Jobs: 100},
	}
	pred, err := des.Simulate(sc, des.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Options{Workers: 2, Fleet: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(sc, Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	if got.Jobs != 100 || got.Failed != 0 {
		t.Fatalf("completed %d jobs (%d failed), want 100", got.Jobs, got.Failed)
	}
	ratio := pred.Throughput / got.Throughput
	t.Logf("closed loop: measured %.0f jobs/s, DES %.0f jobs/s (ratio %.3f)", got.Throughput, pred.Throughput, ratio)
	if ratio < 0.9 || ratio > 2.0 {
		t.Errorf("closed-loop throughput %.0f jobs/s vs DES %.0f jobs/s outside band", got.Throughput, pred.Throughput)
	}
}

func TestRunRejectsBadTargets(t *testing.T) {
	sc := openScenario(1, 4)
	if _, err := Run(sc, Options{}); err == nil {
		t.Error("Run accepted no target")
	}
	svc, err := service.New(service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	if _, err := Run(sc, Options{Service: svc, Addr: "127.0.0.1:1"}); err == nil {
		t.Error("Run accepted two targets")
	}
	bad := openScenario(1, 4)
	bad.Mix = nil
	if _, err := Run(bad, Options{Service: svc}); err == nil {
		t.Error("Run accepted an invalid scenario")
	}
	if _, err := Run(sc, Options{Addr: "127.0.0.1:1", Conns: 2, Timeout: time.Second}); err == nil {
		t.Error("Run connected to a dead address")
	}
}
