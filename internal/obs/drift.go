package obs

import (
	"fmt"
	"sync"
	"time"
)

// SojournBand is one class's predicted sojourn digest in the reusable form
// the drift alarm consumes: the DES-predicted mean plus the scenario's
// acceptance ratios. internal/des exports these from a simulated Result
// (Result.SojournBands), closing the predicted→measured loop the paper's
// comparison methodology implies.
type SojournBand struct {
	Class     int           `json:"class"`
	Predicted time.Duration `json:"predicted"` // DES mean sojourn
	P99       time.Duration `json:"p99"`       // DES p99 sojourn (context)
	Lo        float64       `json:"lo"`        // measured/predicted lower bound
	Hi        float64       `json:"hi"`        // measured/predicted upper bound
}

// DriftOptions tune a DriftAlarm.
type DriftOptions struct {
	// Window is the per-class sliding-window size in samples (0 selects
	// 256): the alarm judges the mean of the last Window sojourns.
	Window int
	// MinSamples is the evidence floor: a class with fewer observations in
	// its window never alarms (0 selects 32). Startup transients and
	// near-idle classes stay quiet.
	MinSamples int
	// Gauge, when non-nil, is flipped 1/0 as the alarm trips/clears on
	// each Check — typically Registry.Gauge("splitexec_drift_alarm").
	Gauge *Gauge
}

// ClassDrift is one class's verdict at Check time.
type ClassDrift struct {
	Class     int           `json:"class"`
	Samples   int           `json:"samples"`
	Measured  time.Duration `json:"measured"`  // windowed mean sojourn
	Predicted time.Duration `json:"predicted"` // DES mean
	Ratio     float64       `json:"ratio"`     // measured / predicted
	Lo        float64       `json:"lo"`
	Hi        float64       `json:"hi"`
	// Drifting is true when the ratio left [Lo, Hi] with enough evidence.
	Drifting bool `json:"drifting"`
}

// DriftReport aggregates one Check.
type DriftReport struct {
	Drifting bool         `json:"drifting"`
	Classes  []ClassDrift `json:"classes"`
}

// DriftAlarm folds live per-class sojourn observations into fixed-size
// sliding windows and compares each window's mean against the class's
// DES-predicted band. It is the operational alarm of the ROADMAP's
// learning-augmented telemetry loop: measured behavior leaving the
// predicted envelope flips /healthz (via Healthy) and the wired gauge.
//
// Observe is the hot-path half: one mutex-guarded ring write, no
// allocation. Check — the scrape-time half — walks the windows. A nil
// alarm no-ops everywhere.
type DriftAlarm struct {
	bands      []SojournBand
	window     int
	minSamples int
	gauge      *Gauge

	mu    sync.Mutex
	rings [][]time.Duration // per band: ring of the last window sojourns
	next  []uint64          // per band: total observations
}

// NewDriftAlarm builds an alarm over the given per-class bands. Bands with
// non-positive Predicted or a degenerate ratio range are ignored (they can
// never judge anything). Returns nil — the disabled alarm — when no usable
// band remains, so callers can wire it unconditionally.
func NewDriftAlarm(bands []SojournBand, opts DriftOptions) *DriftAlarm {
	usable := make([]SojournBand, 0, len(bands))
	for _, b := range bands {
		if b.Predicted > 0 && b.Lo > 0 && b.Hi >= b.Lo {
			usable = append(usable, b)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 32
	}
	if opts.MinSamples > opts.Window {
		opts.MinSamples = opts.Window
	}
	a := &DriftAlarm{
		bands:      usable,
		window:     opts.Window,
		minSamples: opts.MinSamples,
		gauge:      opts.Gauge,
		rings:      make([][]time.Duration, len(usable)),
		next:       make([]uint64, len(usable)),
	}
	for i := range a.rings {
		a.rings[i] = make([]time.Duration, opts.Window)
	}
	return a
}

// Observe folds one completed job's sojourn into its class window. Classes
// without a band are ignored.
func (a *DriftAlarm) Observe(class int, sojourn time.Duration) {
	if a == nil {
		return
	}
	for i := range a.bands {
		if a.bands[i].Class != class {
			continue
		}
		a.mu.Lock()
		a.rings[i][a.next[i]%uint64(a.window)] = sojourn
		a.next[i]++
		a.mu.Unlock()
		return
	}
}

// Check evaluates every class window against its band and flips the wired
// gauge. It is cheap enough to run on every scrape.
func (a *DriftAlarm) Check() DriftReport {
	if a == nil {
		return DriftReport{}
	}
	rep := DriftReport{Classes: make([]ClassDrift, 0, len(a.bands))}
	a.mu.Lock()
	for i, b := range a.bands {
		n := int(a.next[i])
		if n > a.window {
			n = a.window
		}
		cd := ClassDrift{Class: b.Class, Samples: n, Predicted: b.Predicted, Lo: b.Lo, Hi: b.Hi}
		if n > 0 {
			var sum time.Duration
			for _, d := range a.rings[i][:n] {
				sum += d
			}
			cd.Measured = sum / time.Duration(n)
			cd.Ratio = float64(cd.Measured) / float64(b.Predicted)
			cd.Drifting = n >= a.minSamples && (cd.Ratio < b.Lo || cd.Ratio > b.Hi)
		}
		if cd.Drifting {
			rep.Drifting = true
		}
		rep.Classes = append(rep.Classes, cd)
	}
	a.mu.Unlock()
	if a.gauge != nil {
		if rep.Drifting {
			a.gauge.Set(1)
		} else {
			a.gauge.Set(0)
		}
	}
	return rep
}

// Healthy is the /healthz hook: it runs a Check and reports the drifting
// classes as an error, or nil while measured stays inside the predicted
// envelope.
func (a *DriftAlarm) Healthy() error {
	if a == nil {
		return nil
	}
	rep := a.Check()
	if !rep.Drifting {
		return nil
	}
	msg := "sojourn drift outside DES band:"
	for _, cd := range rep.Classes {
		if cd.Drifting {
			msg += fmt.Sprintf(" class %d %.2fx (band [%.2f, %.2f], measured %v vs predicted %v, n=%d);",
				cd.Class, cd.Ratio, cd.Lo, cd.Hi, cd.Measured, cd.Predicted, cd.Samples)
		}
	}
	return fmt.Errorf("%s", msg)
}
