package obs

import (
	"sync"
	"time"
)

// Lifecycle stage names, in the order a job moves through the serving
// tiers: submit → queue → route/steal → lease → program → execute → read →
// done/retry/fail. Components record the stages they own — the router
// stamps route/steal, the service the device stages — so a /jobz span reads
// as the job's whole path regardless of which tier traced it.
const (
	StageSubmit  = "submit"
	StageQueue   = "queue"
	StageRoute   = "route"
	StageSteal   = "steal"
	StageLease   = "lease"
	StageProgram = "program"
	StageExecute = "execute"
	StageRead    = "read"
	StageRetry   = "retry"
	StageDone    = "done"
	StageFail    = "fail"
)

// maxSpanEvents bounds one span's event list: a pathological retry storm
// must not grow a span without bound. The terminal done/fail event always
// lands; intermediate events past the cap are dropped and counted.
const maxSpanEvents = 64

// SpanEvent is one lifecycle transition, as an offset from the span start.
type SpanEvent struct {
	Stage string        `json:"stage"`
	At    time.Duration `json:"at"`
}

// Span is one job's recorded lifecycle. Routing metadata (shard, steal,
// re-dispatch) appears on router-tier spans; device metadata on service
// spans.
type Span struct {
	// Seq is the tracer's monotone record number — /jobz pagination key.
	Seq uint64 `json:"seq"`
	// ID is the component's own job identifier: the submission index for
	// service spans, the dispatch sequence for router spans.
	ID    int64  `json:"id"`
	Kind  string `json:"kind"`
	Class int    `json:"class,omitempty"`

	Start time.Time     `json:"start"`
	Total time.Duration `json:"total"`
	Err   string        `json:"err,omitempty"`

	// Routing metadata (router-tier spans): the shard that served the job,
	// its hash-home shard, whether the steal rule diverted it, and how many
	// shard-loss re-dispatches it consumed.
	Shard        int  `json:"shard,omitempty"`
	Home         int  `json:"home,omitempty"`
	Stolen       bool `json:"stolen,omitempty"`
	Redispatches int  `json:"redispatches,omitempty"`
	// Retries counts device-death lease revocations (service spans).
	Retries int `json:"retries,omitempty"`

	Events []SpanEvent `json:"events"`
	// Dropped counts events past the per-span cap.
	Dropped int `json:"dropped,omitempty"`
}

// Tracer records finished spans into a fixed-capacity ring: memory is
// bounded at capacity × (span + its events), and the newest spans win. A
// nil Tracer is a disabled tracer — Start returns a nil builder whose
// methods no-op.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	next uint64 // total spans recorded; ring index = next % len(ring)
}

// DefaultTraceCapacity is the ring size NewTracer(0) selects.
const DefaultTraceCapacity = 512

// NewTracer builds a tracer retaining the last capacity spans (0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Start opens a span; the submit stage is recorded implicitly at offset 0.
// The returned builder is owned by one goroutine at a time (the job's
// carrier), exactly like the job state it shadows.
func (t *Tracer) Start(kind string, id int64, class int) *SpanBuilder {
	if t == nil {
		return nil
	}
	b := &SpanBuilder{t: t}
	b.span.ID = id
	b.span.Kind = kind
	b.span.Class = class
	b.span.Start = time.Now()
	b.span.Events = append(b.span.Events, SpanEvent{Stage: StageSubmit})
	return b
}

// Recorded reports how many spans have finished into the ring over its
// lifetime (not just those still retained).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Recent returns up to n finished spans, newest first. n <= 0 selects the
// whole retained window.
func (t *Tracer) Recent(n int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := int(t.next)
	if have > len(t.ring) {
		have = len(t.ring)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		// Newest first: next-1 is the most recently recorded slot.
		idx := (t.next - 1 - uint64(i)) % uint64(len(t.ring))
		out = append(out, t.ring[idx])
	}
	return out
}

// record stores a finished span (called by SpanBuilder.Finish).
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	sp.Seq = t.next
	t.ring[t.next%uint64(len(t.ring))] = sp
	t.next++
	t.mu.Unlock()
}

// SpanBuilder accumulates one job's lifecycle before it lands in the ring.
// All methods are nil-safe; none lock or allocate beyond the event append.
type SpanBuilder struct {
	t    *Tracer
	span Span
	done bool
}

// Event records a lifecycle transition at the current time.
func (b *SpanBuilder) Event(stage string) {
	if b == nil {
		return
	}
	if len(b.span.Events) >= maxSpanEvents {
		b.span.Dropped++
		return
	}
	b.span.Events = append(b.span.Events, SpanEvent{Stage: stage, At: time.Since(b.span.Start)})
}

// SetRouting stamps the router-tier metadata onto the span.
func (b *SpanBuilder) SetRouting(shard, home int, stolen bool, redispatches int) {
	if b == nil {
		return
	}
	b.span.Shard = shard
	b.span.Home = home
	b.span.Stolen = stolen
	b.span.Redispatches = redispatches
}

// AddRetry counts one device-death lease revocation.
func (b *SpanBuilder) AddRetry() {
	if b == nil {
		return
	}
	b.span.Retries++
}

// Finish closes the span — with a terminal done (errmsg empty) or fail
// event — and records it into the ring. Idempotent: only the first Finish
// records.
func (b *SpanBuilder) Finish(errmsg string) {
	if b == nil || b.done {
		return
	}
	b.done = true
	b.span.Total = time.Since(b.span.Start)
	stage := StageDone
	if errmsg != "" {
		stage = StageFail
		b.span.Err = errmsg
	}
	if len(b.span.Events) >= maxSpanEvents {
		// The terminal event always lands: overwrite the last slot so a
		// capped span still says how it ended.
		b.span.Events[len(b.span.Events)-1] = SpanEvent{Stage: stage, At: b.span.Total}
	} else {
		b.span.Events = append(b.span.Events, SpanEvent{Stage: stage, At: b.span.Total})
	}
	b.t.record(b.span)
}
