// Package obs is the live telemetry substrate of the serving tiers: a
// dependency-free, allocation-conscious metrics registry (atomic counters,
// gauges and fixed-bucket latency histograms), ring-buffered per-job
// lifecycle traces, an opt-in HTTP admin endpoint (/metrics in Prometheus
// text format, /healthz, /jobz, /varz, net/http/pprof) and a predicted-vs-
// measured sojourn drift alarm fed by the DES's per-class predictions.
//
// Everything is nil-safe by construction: a component instrumented against
// a nil *Registry (or nil metric handles) pays only a nil check per
// operation — the disabled-telemetry cost on the Submit hot path is pinned
// at ≤ ~2 ns by internal/benchio's overhead benchmarks. Enabled counters
// are single atomic adds; nothing on a hot path takes a lock or allocates.
//
// Metric names follow the Prometheus data model. A name may carry a label
// set inline — Counter(`jobs_total{outcome="ok"}`) — and the Label helper
// formats one deterministically. Handles are meant to be resolved once, at
// component construction, and held: the registry map lookup is mutex-
// guarded and belongs in setup code, not per-event paths.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (they do nothing), so disabled telemetry costs one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are a programming error but not checked on
// the hot path; the exposition clamps nothing).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-adjust metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reports the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets is the default latency histogram layout: fixed upper bounds
// from 100µs to 10s, wide enough for queue waits under overload and tight
// enough to resolve sub-millisecond QPU phases.
var DefBuckets = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram: cumulative bucket counts
// are computed at exposition time, so Observe is one binary search plus one
// atomic add — no locks, no allocation.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64  // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64    // nanoseconds
	n      atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= d: bucket layouts are small
	// (16 bounds default), so this is a handful of predictable compares.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the cumulative observed duration (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// funcMetric is a value sampled at scrape time — the zero-hot-path-cost way
// to expose a level the component already maintains (queue lengths, device
// busy ledgers).
type funcMetric struct {
	counter bool // exposition type: counter vs gauge
	fn      func() float64
}

// Registry is a named collection of metrics. The zero value is not usable;
// build one with NewRegistry. A nil *Registry is fully usable as a disabled
// registry: every lookup returns a nil handle whose operations no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]funcMetric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]funcMetric{},
	}
}

// Label renders a metric name with a deterministic label set:
// Label("jobs_total", "outcome", "ok") == `jobs_total{outcome="ok"}`.
// Pairs are emitted in the order given; callers keep a stable order so the
// same series always resolves to the same registry entry.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Label(%q) with odd key/value list", name))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// checkName panics on names the Prometheus exposition format would reject —
// registration happens in setup code, so a bad name is a programming error
// best caught loudly and early, not silently exported as garbage.
func checkName(name string) {
	base, _, ok := splitName(name)
	if !ok || base == "" {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for i, r := range base {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// splitName separates `base{labels}` into base and the raw label body.
func splitName(name string) (base, labels string, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, "", true
	}
	if !strings.HasSuffix(name, "}") {
		return name, "", false
	}
	return name[:i], name[i+1 : len(name)-1], true
}

// Counter returns (creating if needed) the named counter; nil registries
// return a nil, no-op handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bucket
// layout is fixed at first registration; nil bounds select DefBuckets.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]time.Duration(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a level sampled at scrape time — zero hot-path cost
// for state the component already tracks. Re-registration replaces fn.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	checkName(name)
	r.mu.Lock()
	r.funcs[name] = funcMetric{fn: fn}
	r.mu.Unlock()
}

// CounterFunc is GaugeFunc with counter exposition semantics, for
// monotone ledgers the component already maintains (cumulative busy time).
func (r *Registry) CounterFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	checkName(name)
	r.mu.Lock()
	r.funcs[name] = funcMetric{counter: true, fn: fn}
	r.mu.Unlock()
}

// snapshotSeries is one materialized series for exposition/varz.
type snapshotSeries struct {
	name string // full series name incl. labels
	kind string // "counter", "gauge", "histogram"
	val  float64
	hist *histSnapshot
}

type histSnapshot struct {
	bounds []time.Duration
	counts []int64 // per-bucket (not cumulative); len(bounds)+1
	sum    time.Duration
	n      int64
}

// snapshot materializes every series under the registry lock; func metrics
// are sampled outside it so a slow sampler cannot wedge writers.
func (r *Registry) snapshot() []snapshotSeries {
	r.mu.Lock()
	out := make([]snapshotSeries, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out = append(out, snapshotSeries{name: name, kind: "counter", val: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, snapshotSeries{name: name, kind: "gauge", val: float64(g.Value())})
	}
	for name, h := range r.hists {
		hs := &histSnapshot{bounds: h.bounds, counts: make([]int64, len(h.counts))}
		for i := range h.counts {
			hs.counts[i] = h.counts[i].Load()
		}
		hs.sum = time.Duration(h.sum.Load())
		hs.n = h.n.Load()
		out = append(out, snapshotSeries{name: name, kind: "histogram", hist: hs})
	}
	type pending struct {
		name string
		fm   funcMetric
	}
	fns := make([]pending, 0, len(r.funcs))
	for name, fm := range r.funcs {
		fns = append(fns, pending{name, fm})
	}
	r.mu.Unlock()
	for _, p := range fns {
		kind := "gauge"
		if p.fm.counter {
			kind = "counter"
		}
		out = append(out, snapshotSeries{name: p.name, kind: kind, val: p.fm.fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
