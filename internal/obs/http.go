package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Scope bundles the telemetry destinations one deployment publishes into.
// Components accept a *Scope and instrument against its (possibly nil)
// members; a nil *Scope is fully-disabled telemetry at nil-check cost.
type Scope struct {
	Reg   *Registry
	Trace *Tracer
	Drift *DriftAlarm
}

// Registry returns the scope's registry (nil on a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Tracer returns the scope's tracer (nil on a nil scope).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.Trace
}

// DriftAlarm returns the scope's drift alarm (nil on a nil scope).
func (s *Scope) DriftAlarm() *DriftAlarm {
	if s == nil {
		return nil
	}
	return s.Drift
}

// NewScope builds a fully-armed scope: fresh registry and a default-size
// tracer. The drift alarm stays nil until the caller has predictions to arm
// it with (SetDrift).
func NewScope() *Scope {
	return &Scope{Reg: NewRegistry(), Trace: NewTracer(0)}
}

// SetDrift arms (or replaces) the scope's drift alarm. No-op on nil.
func (s *Scope) SetDrift(a *DriftAlarm) {
	if s == nil {
		return
	}
	s.Drift = a
}

// HealthCheck is one named /healthz probe.
type HealthCheck struct {
	Name  string
	Check func() error
}

// ServerOptions configure the admin endpoint.
type ServerOptions struct {
	Scope *Scope
	// Health are additional probes beyond the scope's drift alarm.
	Health []HealthCheck
	// JobzLimit caps one /jobz response (0 selects 100 spans by default,
	// ?n= up to the tracer's retained window).
	JobzLimit int
}

// Server is the opt-in HTTP admin endpoint: /metrics (Prometheus text
// format), /healthz, /jobz (recent trace spans as JSON), /varz (registry
// snapshot as JSON) and the net/http/pprof handlers under /debug/pprof/.
// It serves on its own mux — nothing leaks into http.DefaultServeMux.
type Server struct {
	opts ServerOptions
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr and serves the admin endpoint in the background until
// Close.
func Serve(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{opts: opts, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/jobz", s.handleJobz)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() net.Addr {
	if s == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the admin server down gracefully: in-flight scrapes finish
// (bounded by a short deadline), then the listener closes. Nil-safe, so
// drain paths can call it unconditionally.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// A Check refreshes the drift gauge before the registry renders, so
	// the scraped series reflects this scrape's window, not the last one.
	s.opts.Scope.DriftAlarm().Check()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opts.Scope.Registry().WriteProm(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type failure struct {
		Name  string `json:"name"`
		Error string `json:"error"`
	}
	var fails []failure
	if err := s.opts.Scope.DriftAlarm().Healthy(); err != nil {
		fails = append(fails, failure{Name: "drift", Error: err.Error()})
	}
	for _, hc := range s.opts.Health {
		if err := hc.Check(); err != nil {
			fails = append(fails, failure{Name: hc.Name, Error: err.Error()})
		}
	}
	if len(fails) == 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(fails)
}

func (s *Server) handleJobz(w http.ResponseWriter, r *http.Request) {
	n := s.opts.JobzLimit
	if n <= 0 {
		n = 100
	}
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	tr := s.opts.Scope.Tracer()
	out := struct {
		Recorded uint64 `json:"recorded"`
		Spans    []Span `json:"spans"`
	}{Recorded: tr.Recorded(), Spans: tr.Recent(n)}
	if out.Spans == nil {
		out.Spans = []Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.opts.Scope.Registry().Varz())
}

// VarzHistogram is a histogram's /varz rendering.
type VarzHistogram struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Buckets []VarzBucket  `json:"buckets"`
}

// VarzBucket is one cumulative histogram bucket.
type VarzBucket struct {
	LE    string `json:"le"` // upper bound in seconds ("+Inf" for overflow)
	Count int64  `json:"count"`
}

// Varz snapshots the registry as a JSON-friendly map: scalar series to
// numbers, histograms to VarzHistogram. A nil registry snapshots empty.
func (r *Registry) Varz() map[string]interface{} {
	out := map[string]interface{}{}
	if r == nil {
		return out
	}
	for _, s := range r.snapshot() {
		if s.kind != "histogram" {
			out[s.name] = s.val
			continue
		}
		vh := VarzHistogram{Count: s.hist.n, Sum: s.hist.sum}
		var cum int64
		for i, b := range s.hist.bounds {
			cum += s.hist.counts[i]
			vh.Buckets = append(vh.Buckets, VarzBucket{LE: formatValue(b.Seconds()), Count: cum})
		}
		cum += s.hist.counts[len(s.hist.bounds)]
		vh.Buckets = append(vh.Buckets, VarzBucket{LE: "+Inf", Count: cum})
		out[s.name] = vh
	}
	return out
}
