package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per metric family, series sorted
// lexicographically, histograms as cumulative `_bucket{le=...}` series plus
// `_sum`/`_count`. Durations are exposed in seconds, the Prometheus base
// unit. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	series := r.snapshot()
	// Group into families: the TYPE line names the base metric, and every
	// labeled series of it follows.
	type family struct {
		base string
		kind string
		rows []snapshotSeries
	}
	fams := map[string]*family{}
	order := []string{}
	for _, s := range series {
		base, _, _ := splitName(s.name)
		f, ok := fams[base]
		if !ok {
			f = &family{base: base, kind: s.kind}
			fams[base] = f
			order = append(order, base)
		}
		f.rows = append(f.rows, s)
	}
	sort.Strings(order)
	for _, base := range order {
		f := fams[base]
		fmt.Fprintf(bw, "# TYPE %s %s\n", base, f.kind)
		for _, s := range f.rows {
			if s.kind == "histogram" {
				writeHistogram(bw, s.name, s.hist)
				continue
			}
			fmt.Fprintf(bw, "%s %s\n", s.name, formatValue(s.val))
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series of one histogram. The
// le label merges into any label set the series name already carries.
func writeHistogram(w io.Writer, name string, h *histSnapshot) {
	base, labels, _ := splitName(name)
	series := func(suffix, extra string) string {
		l := labels
		if extra != "" {
			if l != "" {
				l += ","
			}
			l += extra
		}
		if l == "" {
			return base + suffix
		}
		return base + suffix + "{" + l + "}"
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s %d\n", series("_bucket", fmt.Sprintf("le=%q", formatValue(bound.Seconds()))), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s %s\n", series("_sum", ""), formatValue(h.sum.Seconds()))
	fmt.Fprintf(w, "%s %d\n", series("_count", ""), h.n)
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, no exponent for integral values in
// int64 range.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition checks text for gross Prometheus exposition-format
// violations: non-comment lines must be `name[{labels}] value`, every
// series must follow a TYPE line declaring its family, and histogram
// families must close with _sum and _count. It is the malformed-output gate
// the storm runner applies to live /metrics scrapes.
func ValidateExposition(text string) error {
	typed := map[string]string{}
	seen := false
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("obs: line %d: malformed TYPE comment %q", ln+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("obs: line %d: unknown metric type %q", ln+1, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		seen = true
		name, value, ok := splitSample(line)
		if !ok {
			return fmt.Errorf("obs: line %d: malformed sample %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("obs: line %d: bad sample value %q", ln+1, value)
		}
		base, _, ok := splitName(name)
		if !ok {
			return fmt.Errorf("obs: line %d: malformed series name %q", ln+1, name)
		}
		fam := base
		if t := familyOf(typed, base); t != "" {
			fam = t
		}
		if _, ok := typed[fam]; !ok {
			return fmt.Errorf("obs: line %d: series %q has no TYPE declaration", ln+1, name)
		}
	}
	if !seen {
		return fmt.Errorf("obs: exposition has no samples")
	}
	return nil
}

// familyOf resolves a histogram sub-series (_bucket/_sum/_count) to its
// declared family name, or "" when base itself should be declared.
func familyOf(typed map[string]string, base string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		fam, ok := strings.CutSuffix(base, suffix)
		if ok && typed[fam] == "histogram" {
			return fam
		}
	}
	return ""
}

// splitSample separates `name[{labels}] value` — timestamps are not emitted
// by this registry and are rejected.
func splitSample(line string) (name, value string, ok bool) {
	// The label body may contain spaces inside quoted values, so split on
	// the last space outside braces.
	end := strings.LastIndexByte(line, '}')
	rest := line
	if end >= 0 {
		rest = line[end:]
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return "", "", false
	}
	if end >= 0 {
		sp += end
	}
	name = strings.TrimSpace(line[:sp])
	value = strings.TrimSpace(line[sp+1:])
	if name == "" || value == "" || strings.ContainsAny(value, " \t") {
		return "", "", false
	}
	return name, value, true
}
