package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(4)
	b := tr.Start("job", 7, 2)
	b.Event(StageQueue)
	b.Event(StageLease)
	b.Event(StageExecute)
	b.AddRetry()
	b.Finish("")
	if tr.Recorded() != 1 {
		t.Fatalf("recorded = %d", tr.Recorded())
	}
	spans := tr.Recent(10)
	if len(spans) != 1 {
		t.Fatalf("recent = %d spans", len(spans))
	}
	sp := spans[0]
	if sp.ID != 7 || sp.Kind != "job" || sp.Class != 2 || sp.Retries != 1 {
		t.Fatalf("span = %+v", sp)
	}
	stages := make([]string, 0, len(sp.Events))
	for _, e := range sp.Events {
		stages = append(stages, e.Stage)
	}
	if got, want := strings.Join(stages, ","), "submit,queue,lease,execute,done"; got != want {
		t.Fatalf("stages = %s, want %s", got, want)
	}
	for i := 1; i < len(sp.Events); i++ {
		if sp.Events[i].At < sp.Events[i-1].At {
			t.Fatalf("event offsets must be non-decreasing: %+v", sp.Events)
		}
	}
	if sp.Total < sp.Events[len(sp.Events)-1].At {
		t.Fatalf("total %v earlier than last event %v", sp.Total, sp.Events[len(sp.Events)-1].At)
	}
}

func TestTracerFailSpan(t *testing.T) {
	tr := NewTracer(4)
	b := tr.Start("job", 1, 0)
	b.Finish("boom")
	sp := tr.Recent(1)[0]
	if sp.Err != "boom" {
		t.Fatalf("err = %q", sp.Err)
	}
	if last := sp.Events[len(sp.Events)-1]; last.Stage != StageFail {
		t.Fatalf("terminal stage = %s", last.Stage)
	}
	// Double Finish must not record twice.
	b.Finish("again")
	if tr.Recorded() != 1 {
		t.Fatalf("double finish recorded %d spans", tr.Recorded())
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		b := tr.Start("job", int64(i), 0)
		b.Finish("")
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded = %d", tr.Recorded())
	}
	spans := tr.Recent(0)
	if len(spans) != 3 {
		t.Fatalf("retained = %d, want ring capacity 3", len(spans))
	}
	// Newest first: 9, 8, 7.
	for i, want := range []int64{9, 8, 7} {
		if spans[i].ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d", i, spans[i].ID, want)
		}
	}
	if spans[0].Seq != 9 {
		t.Fatalf("seq = %d", spans[0].Seq)
	}
}

func TestSpanEventCap(t *testing.T) {
	tr := NewTracer(2)
	b := tr.Start("job", 1, 0)
	for i := 0; i < maxSpanEvents+50; i++ {
		b.Event(StageRetry)
	}
	b.Finish("")
	sp := tr.Recent(1)[0]
	if len(sp.Events) != maxSpanEvents {
		t.Fatalf("events = %d, want cap %d", len(sp.Events), maxSpanEvents)
	}
	if sp.Dropped == 0 {
		t.Fatal("dropped counter must record capped events")
	}
	if sp.Events[len(sp.Events)-1].Stage != StageDone {
		t.Fatal("terminal event must survive the cap")
	}
}

func TestRoutingMetadata(t *testing.T) {
	tr := NewTracer(2)
	b := tr.Start("route", 3, 1)
	b.Event(StageRoute)
	b.Event(StageSteal)
	b.SetRouting(2, 0, true, 1)
	b.Finish("")
	sp := tr.Recent(1)[0]
	if sp.Shard != 2 || sp.Home != 0 || !sp.Stolen || sp.Redispatches != 1 {
		t.Fatalf("routing metadata = %+v", sp)
	}
}

func TestDriftAlarm(t *testing.T) {
	g := &Gauge{}
	a := NewDriftAlarm([]SojournBand{
		{Class: 0, Predicted: 10 * time.Millisecond, Lo: 0.5, Hi: 2.0},
		{Class: 1, Predicted: 20 * time.Millisecond, Lo: 0.5, Hi: 2.0},
	}, DriftOptions{Window: 16, MinSamples: 4, Gauge: g})
	if a == nil {
		t.Fatal("usable bands must arm the alarm")
	}

	// In-band observations: healthy.
	for i := 0; i < 8; i++ {
		a.Observe(0, 11*time.Millisecond)
		a.Observe(1, 19*time.Millisecond)
	}
	rep := a.Check()
	if rep.Drifting || g.Value() != 0 {
		t.Fatalf("in-band must not drift: %+v", rep)
	}
	if err := a.Healthy(); err != nil {
		t.Fatal(err)
	}

	// Class 1 blows past the band; class 0 stays put.
	for i := 0; i < 16; i++ {
		a.Observe(1, 100*time.Millisecond)
	}
	rep = a.Check()
	if !rep.Drifting || g.Value() != 1 {
		t.Fatalf("out-of-band must drift: %+v gauge=%d", rep, g.Value())
	}
	var c1 *ClassDrift
	for i := range rep.Classes {
		if rep.Classes[i].Class == 1 {
			c1 = &rep.Classes[i]
		}
	}
	if c1 == nil || !c1.Drifting || c1.Ratio < 4 {
		t.Fatalf("class 1 drift = %+v", c1)
	}
	err := a.Healthy()
	if err == nil || !strings.Contains(err.Error(), "class 1") {
		t.Fatalf("Healthy = %v", err)
	}

	// Recovery: the window slides back into band and the alarm clears.
	for i := 0; i < 16; i++ {
		a.Observe(1, 20*time.Millisecond)
	}
	if rep := a.Check(); rep.Drifting || g.Value() != 0 {
		t.Fatalf("recovered window must clear the alarm: %+v", rep)
	}
}

func TestDriftAlarmEvidenceFloor(t *testing.T) {
	a := NewDriftAlarm([]SojournBand{{Class: 0, Predicted: time.Millisecond, Lo: 0.5, Hi: 2}},
		DriftOptions{Window: 64, MinSamples: 8})
	for i := 0; i < 7; i++ {
		a.Observe(0, time.Second) // wildly out of band, but below the floor
	}
	if rep := a.Check(); rep.Drifting {
		t.Fatalf("below-floor evidence must not alarm: %+v", rep)
	}
	a.Observe(0, time.Second)
	if rep := a.Check(); !rep.Drifting {
		t.Fatal("at-floor evidence must alarm")
	}
}

func TestDriftAlarmUnusableBands(t *testing.T) {
	if a := NewDriftAlarm(nil, DriftOptions{}); a != nil {
		t.Fatal("no bands must disarm")
	}
	if a := NewDriftAlarm([]SojournBand{{Class: 0, Predicted: 0, Lo: 0.5, Hi: 2}}, DriftOptions{}); a != nil {
		t.Fatal("zero prediction must disarm")
	}
	if a := NewDriftAlarm([]SojournBand{{Class: 0, Predicted: time.Second, Lo: 2, Hi: 0.5}}, DriftOptions{}); a != nil {
		t.Fatal("inverted band must disarm")
	}
}
