package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	sc := NewScope()
	sc.Reg.Counter("splitexec_jobs_submitted_total").Add(5)
	sc.Reg.Histogram("splitexec_sojourn_seconds", nil).Observe(3 * time.Millisecond)
	b := sc.Trace.Start("job", 0, 1)
	b.Event(StageQueue)
	b.Finish("")

	var degraded bool
	srv, err := Serve("127.0.0.1:0", ServerOptions{
		Scope: sc,
		Health: []HealthCheck{{Name: "custom", Check: func() error {
			if degraded {
				return fmt.Errorf("custom check tripped")
			}
			return nil
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	// /metrics: valid exposition carrying the registered series.
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "splitexec_jobs_submitted_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics malformed: %v", err)
	}

	// /healthz: ok, then 503 once a check fails.
	code, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	degraded = true
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "custom check tripped") {
		t.Fatalf("degraded /healthz = %d %q", code, body)
	}
	degraded = false

	// /jobz: the recorded span, as JSON.
	code, body = get(t, base+"/jobz?n=10")
	if code != 200 {
		t.Fatalf("/jobz = %d", code)
	}
	var jobz struct {
		Recorded uint64 `json:"recorded"`
		Spans    []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &jobz); err != nil {
		t.Fatalf("/jobz JSON: %v\n%s", err, body)
	}
	if jobz.Recorded != 1 || len(jobz.Spans) != 1 || jobz.Spans[0].Class != 1 {
		t.Fatalf("/jobz = %+v", jobz)
	}

	// /varz: registry snapshot as JSON.
	code, body = get(t, base+"/varz")
	if code != 200 {
		t.Fatalf("/varz = %d", code)
	}
	var varz map[string]interface{}
	if err := json.Unmarshal([]byte(body), &varz); err != nil {
		t.Fatalf("/varz JSON: %v", err)
	}
	if varz["splitexec_jobs_submitted_total"] != float64(5) {
		t.Fatalf("/varz counter = %v", varz["splitexec_jobs_submitted_total"])
	}

	// pprof is wired.
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHealthzDriftIntegration(t *testing.T) {
	sc := NewScope()
	gauge := sc.Reg.Gauge("splitexec_drift_alarm")
	sc.SetDrift(NewDriftAlarm([]SojournBand{{Class: 0, Predicted: time.Millisecond, Lo: 0.5, Hi: 2}},
		DriftOptions{Window: 8, MinSamples: 2, Gauge: gauge}))
	srv, err := Serve("127.0.0.1:0", ServerOptions{Scope: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	for i := 0; i < 4; i++ {
		sc.Drift.Observe(0, 50*time.Millisecond) // 50x the prediction
	}
	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "drift") {
		t.Fatalf("drifted /healthz = %d %q", code, body)
	}
	// The /metrics scrape refreshes the gauge via Check.
	_, body = get(t, base+"/metrics")
	if !strings.Contains(body, "splitexec_drift_alarm 1") {
		t.Fatalf("drift gauge not flipped in:\n%s", body)
	}
}

func TestServerGracefulClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerOptions{Scope: NewScope()})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("closed server must refuse connections")
	}
	// Close is idempotent and nil-safe.
	srv.Close()
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
}
