package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// The whole disabled-telemetry surface: nil registry, nil handles,
	// nil tracer, nil builder, nil alarm, nil scope. None may panic.
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	r.GaugeFunc("y", func() float64 { return 1 })
	r.CounterFunc("y_total", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Varz()) != 0 {
		t.Fatal("nil registry Varz must be empty")
	}

	var tr *Tracer
	b := tr.Start("job", 1, 0)
	b.Event(StageQueue)
	b.AddRetry()
	b.SetRouting(1, 0, true, 2)
	b.Finish("")
	if tr.Recorded() != 0 || tr.Recent(10) != nil {
		t.Fatal("nil tracer must record nothing")
	}

	var a *DriftAlarm
	a.Observe(0, time.Second)
	if rep := a.Check(); rep.Drifting {
		t.Fatal("nil alarm must not drift")
	}
	if err := a.Healthy(); err != nil {
		t.Fatal(err)
	}

	var sc *Scope
	if sc.Registry() != nil || sc.Tracer() != nil || sc.DriftAlarm() != nil {
		t.Fatal("nil scope accessors must return nil")
	}
	sc.SetDrift(nil)
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("same name must return the same handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	h := r.Histogram("lat_seconds", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	if h.Count() != 4 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if want := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second; h.Sum() != want {
		t.Fatalf("hist sum = %v, want %v", h.Sum(), want)
	}
}

func TestLabelFormatting(t *testing.T) {
	if got := Label("busy", "device", "3"); got != `busy{device="3"}` {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("plain"); got != "plain" {
		t.Fatalf("Label = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd kv list must panic")
		}
	}()
	Label("x", "lonely")
}

func TestBadNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1leading_digit", "has space", "dash-ed", `unterminated{a="b"`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("splitexec_jobs_total").Add(3)
	r.Counter(Label("splitexec_device_busy_seconds_total", "device", "0")).Add(1)
	r.Counter(Label("splitexec_device_busy_seconds_total", "device", "1")).Add(2)
	r.Gauge("splitexec_queue_depth").Set(4)
	r.GaugeFunc("splitexec_live", func() float64 { return 1.5 })
	h := r.Histogram(Label("splitexec_sojourn_seconds", "tier", "svc"), []time.Duration{time.Millisecond, time.Second})
	h.Observe(2 * time.Millisecond)
	h.Observe(500 * time.Microsecond)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE splitexec_jobs_total counter\n",
		"splitexec_jobs_total 3\n",
		`splitexec_device_busy_seconds_total{device="0"} 1` + "\n",
		"# TYPE splitexec_queue_depth gauge\n",
		"splitexec_queue_depth 4\n",
		"splitexec_live 1.5\n",
		"# TYPE splitexec_sojourn_seconds histogram\n",
		`splitexec_sojourn_seconds_bucket{tier="svc",le="0.001"} 1` + "\n",
		`splitexec_sojourn_seconds_bucket{tier="svc",le="1"} 2` + "\n",
		`splitexec_sojourn_seconds_bucket{tier="svc",le="+Inf"} 2` + "\n",
		`splitexec_sojourn_seconds_sum{tier="svc"} 0.0025` + "\n",
		`splitexec_sojourn_seconds_count{tier="svc"} 2` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("own exposition must validate: %v\n%s", err, text)
	}
	// Deterministic: two renders are byte-identical.
	var sb2 strings.Builder
	r.WriteProm(&sb2)
	if sb2.String() != text {
		t.Fatal("exposition output must be deterministic")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no samples":     "# TYPE x counter\n",
		"untyped series": "rogue_metric 1\n",
		"bad value":      "# TYPE x counter\nx pear\n",
		"no value":       "# TYPE x counter\nx\n",
		"bad TYPE line":  "# TYPE x\nx 1\n",
		"unknown type":   "# TYPE x flavor\nx 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: expected validation error for %q", name, text)
		}
	}
	good := "# TYPE x counter\nx 1\n# TYPE lat histogram\nlat_bucket{le=\"+Inf\"} 1\nlat_sum 0.5\nlat_count 1\n"
	if err := ValidateExposition(good); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

// TestRegistryRaceHammer is the concurrent-writers gate: many goroutines
// pounding the same handles, new registrations, and scrapes, all under
// -race in CI.
func TestRegistryRaceHammer(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64)
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_depth")
			h := r.Histogram("hammer_seconds", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				g.Add(-1)
				if i%64 == 0 {
					// Concurrent registration of fresh and existing names.
					r.Counter(Label("hammer_shard_total", "shard", string(rune('0'+gi))))
					sp := tr.Start("job", int64(i), gi)
					sp.Event(StageQueue)
					sp.Finish("")
				}
			}
		}(gi)
	}
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var sb strings.Builder
				r.WriteProm(&sb)
				r.Varz()
				tr.Recent(16)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total").Value(); got != goroutines*iters {
		t.Fatalf("hammer_total = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("hammer_depth").Value(); got != 0 {
		t.Fatalf("hammer_depth = %d, want 0", got)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != goroutines*iters {
		t.Fatalf("hammer_seconds count = %d", got)
	}
}
