// Package machine defines Go-native hardware descriptions for the
// asymmetric CPU+QPU node the paper models (Fig. 1a, Fig. 5): a conventional
// host socket, a quantum annealing socket, and the PCIe link joining them.
// The same description can be rendered to ASPEN machine-model source, so the
// analytic (DSL) and simulated (Go) execution paths share one set of
// hardware constants.
package machine

import (
	"fmt"
	"strings"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
)

// CPU describes a conventional multicore socket by aggregate rates.
type CPU struct {
	Name         string
	Cores        int
	ClockHz      float64
	SIMDWidthSP  float64 // single-precision SIMD lanes
	SIMDWidthDP  float64 // double-precision SIMD lanes
	FMAFactor    float64 // multiply-add fusion factor (2 when present)
	MemBandwidth float64 // bytes/second
}

// XeonE5_2680 is the paper's host CPU (Sandy Bridge-EP, 8 cores @ 2.7 GHz,
// AVX, quad-channel DDR3-1066).
func XeonE5_2680() CPU {
	return CPU{
		Name:         "intel_xeon_e5_2680",
		Cores:        8,
		ClockHz:      2.7e9,
		SIMDWidthSP:  8,
		SIMDWidthDP:  4,
		FMAFactor:    2,
		MemBandwidth: 34.1e9,
	}
}

// Trait flags mirroring the ASPEN resource traits.
type Trait uint8

// Traits selecting the flop rate.
const (
	SP Trait = 1 << iota // single precision
	SIMD
	FMAD
)

// FlopsRate returns the socket's flops/second for the trait set (double
// precision scalar when no traits given).
func (c CPU) FlopsRate(traits Trait) float64 {
	rate := c.ClockHz * float64(c.Cores)
	if traits&SIMD != 0 {
		if traits&SP != 0 {
			rate *= c.SIMDWidthSP
		} else {
			rate *= c.SIMDWidthDP
		}
	}
	if traits&FMAD != 0 {
		rate *= c.FMAFactor
	}
	return rate
}

// FlopTime converts an operation count to compute time under the traits.
func (c CPU) FlopTime(ops float64, traits Trait) time.Duration {
	return secondsToDuration(ops / c.FlopsRate(traits))
}

// MemTime converts a byte volume to memory-transfer time.
func (c CPU) MemTime(bytes float64) time.Duration {
	return secondsToDuration(bytes / c.MemBandwidth)
}

// Link is a host-device interconnect.
type Link struct {
	Name      string
	Bandwidth float64 // bytes/second
	Latency   time.Duration
}

// PCIe2x16 is the paper-era host-QPU interconnect.
func PCIe2x16() Link {
	return Link{Name: "pcie", Bandwidth: 8e9, Latency: 5 * time.Microsecond}
}

// TransferTime returns latency + bytes/bandwidth.
func (l Link) TransferTime(bytes float64) time.Duration {
	return l.Latency + secondsToDuration(bytes/l.Bandwidth)
}

// QPU describes the quantum annealing socket: its topology, fabrication
// faults and time constants.
type QPU struct {
	Name     string
	Topology graph.Chimera
	Faults   graph.FaultModel
	Timings  anneal.Timings
	// ControlBits is the DAC precision available for Ising parameters.
	ControlBits int
}

// DW2Vesuvius is the 512-qubit processor generation whose timing constants
// appear in the paper's stage models.
func DW2Vesuvius() QPU {
	return QPU{
		Name:        "DwaveVesuvius20",
		Topology:    graph.Vesuvius(),
		Timings:     anneal.DW2Timings(),
		ControlBits: 5,
	}
}

// DW2X1152 is the 1152-qubit C(12,12,4) generation used for the stage-1
// hardware-graph constants (M = N = 12, NG = 1152).
func DW2X1152() QPU {
	q := DW2Vesuvius()
	q.Name = "Dw2x"
	q.Topology = graph.DW2X()
	return q
}

// WorkingGraph returns the fault-pruned hardware graph.
func (q QPU) WorkingGraph() *graph.Graph {
	return q.Faults.Apply(q.Topology.Graph())
}

// Node is the asymmetric multi-processor node of Fig. 1(a): host CPU plus
// QPU behind a link.
type Node struct {
	Name string
	CPU  CPU
	QPU  QPU
	Link Link
}

// SimpleNode mirrors the paper's Fig. 5 machine model (minus the GPU socket,
// which none of the application models exercise) with the DW2X topology used
// by the stage-1 resource model.
func SimpleNode() Node {
	return Node{Name: "SimpleNode", CPU: XeonE5_2680(), QPU: DW2X1152(), Link: PCIe2x16()}
}

// ToAspen renders the node as ASPEN machine-model source parseable by the
// aspen package, with one socket per processor and the QuOps resource on the
// QPU core. Rates are emitted so that the DSL's conversion semantics yield
// the same times as the Go-native methods.
func (n Node) ToAspen() string {
	var b strings.Builder
	anneal20 := n.QPU.Timings.AnnealTime.Seconds()
	fmt.Fprintf(&b, `memory hostmem {
  property bandwidth [%g]
}

link %s {
  property bandwidth [%g]
  property latency   [%g]
}

core hostcore {
  property clock         [%g]
  property issue_sp      [1]
  property issue_dp      [1]
  property simd_width_sp [%g]
  property simd_width_dp [%g]
  property fmad_factor   [%g]
}

socket %s {
  [%d] hostcore cores
  hostmem memory
  linked with %s
}

core qpucore {
  resource QuOps(number) [number * %g]
}

socket %s {
  [1] qpucore cores
  hostmem memory
  linked with %s
}

machine %s {
  [1] %s_node nodes
}

node %s_node {
  [1] %s sockets
  [1] %s sockets
}
`,
		n.CPU.MemBandwidth,
		n.Link.Name, n.Link.Bandwidth, n.Link.Latency.Seconds(),
		n.CPU.ClockHz, n.CPU.SIMDWidthSP, n.CPU.SIMDWidthDP, n.CPU.FMAFactor,
		n.CPU.Name, n.CPU.Cores, n.Link.Name,
		anneal20,
		n.QPU.Name, n.Link.Name,
		n.Name, n.Name,
		n.Name, n.CPU.Name, n.QPU.Name,
	)
	return b.String()
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
