package machine

import (
	"math"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/aspen"
)

func TestXeonRates(t *testing.T) {
	cpu := XeonE5_2680()
	cases := []struct {
		traits Trait
		want   float64
	}{
		{0, 21.6e9},          // dp scalar
		{SP, 21.6e9},         // sp scalar
		{SP | SIMD, 172.8e9}, // AVX SP
		{SIMD, 86.4e9},       // AVX DP
		{SP | SIMD | FMAD, 345.6e9},
	}
	for _, c := range cases {
		if got := cpu.FlopsRate(c.traits); math.Abs(got-c.want) > 1 {
			t.Errorf("traits %b: rate = %v, want %v", c.traits, got, c.want)
		}
	}
}

func TestFlopAndMemTimes(t *testing.T) {
	cpu := XeonE5_2680()
	if d := cpu.FlopTime(172.8e9, SP|SIMD); d != time.Second {
		t.Errorf("FlopTime = %v, want 1s", d)
	}
	if d := cpu.MemTime(34.1e9); d != time.Second {
		t.Errorf("MemTime = %v, want 1s", d)
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := PCIe2x16()
	if d := l.TransferTime(8e9); d != time.Second+5*time.Microsecond {
		t.Errorf("TransferTime = %v", d)
	}
	if d := l.TransferTime(0); d != 5*time.Microsecond {
		t.Errorf("latency-only transfer = %v", d)
	}
}

func TestQPUPresets(t *testing.T) {
	v := DW2Vesuvius()
	if v.Topology.Qubits() != 512 {
		t.Errorf("Vesuvius qubits = %d", v.Topology.Qubits())
	}
	x := DW2X1152()
	if x.Topology.Qubits() != 1152 {
		t.Errorf("DW2X qubits = %d", x.Topology.Qubits())
	}
	if v.Timings.AnnealTime != 20*time.Microsecond {
		t.Errorf("anneal time = %v", v.Timings.AnnealTime)
	}
}

func TestWorkingGraphAppliesFaults(t *testing.T) {
	q := DW2Vesuvius()
	q.Faults.DeadQubits = []int{0, 1}
	g := q.WorkingGraph()
	if g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Error("dead qubits still wired")
	}
	if g.Order() != 512 {
		t.Errorf("order = %d", g.Order())
	}
}

// The critical consistency property: the ASPEN rendering of the node must
// evaluate resources to the same times as the Go-native methods.
func TestToAspenRoundTrip(t *testing.T) {
	n := SimpleNode()
	f, err := aspen.Parse(n.ToAspen())
	if err != nil {
		t.Fatalf("generated ASPEN does not parse: %v", err)
	}
	spec, err := aspen.BuildMachine(f, n.Name)
	if err != nil {
		t.Fatal(err)
	}
	cpu := spec.Socket(n.CPU.Name)
	if cpu == nil {
		t.Fatal("CPU socket missing from generated machine")
	}
	for _, tc := range []struct {
		traits  []string
		goTrait Trait
	}{
		{nil, 0},
		{[]string{"sp"}, SP},
		{[]string{"sp", "simd"}, SP | SIMD},
		{[]string{"sp", "simd", "fmad"}, SP | SIMD | FMAD},
		{[]string{"dp", "simd"}, SIMD},
	} {
		got, err := cpu.FlopsRate(tc.traits)
		if err != nil {
			t.Fatal(err)
		}
		want := n.CPU.FlopsRate(tc.goTrait)
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("traits %v: aspen %v != native %v", tc.traits, got, want)
		}
	}
	// QuOps: 7 reads = 140 µs either way.
	qpu := spec.Socket(n.QPU.Name)
	if qpu == nil {
		t.Fatal("QPU socket missing")
	}
	sec, err := qpu.CustomResourceTime("QuOps", 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := 7 * n.QPU.Timings.AnnealTime.Seconds(); math.Abs(sec-want) > 1e-15 {
		t.Errorf("QuOps: aspen %v != native %v", sec, want)
	}
	// Memory bandwidth.
	bw, err := cpu.MemoryBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if bw != n.CPU.MemBandwidth {
		t.Errorf("bandwidth: %v != %v", bw, n.CPU.MemBandwidth)
	}
	// Link.
	lt, err := qpu.LinkTime(8e9)
	if err != nil {
		t.Fatal(err)
	}
	if want := n.Link.TransferTime(8e9).Seconds(); math.Abs(lt-want) > 1e-12 {
		t.Errorf("link: %v != %v", lt, want)
	}
}

func TestSimpleNodeShape(t *testing.T) {
	n := SimpleNode()
	if n.QPU.Topology.M != 12 || n.QPU.Topology.N != 12 {
		t.Errorf("SimpleNode QPU topology = %+v, want C(12,12,4)", n.QPU.Topology)
	}
	if n.CPU.Cores != 8 {
		t.Errorf("cores = %d", n.CPU.Cores)
	}
}
