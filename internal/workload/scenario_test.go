package workload

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

func validScenario() *Scenario {
	return &Scenario{
		Name:    "unit",
		Seed:    7,
		Arrival: Arrival{Kind: Poisson, Rate: 100},
		Mix: []JobClass{
			{Name: "small", Weight: 3, Profile: Profile{
				PreProcess: Duration(2 * time.Millisecond),
				Network:    Duration(50 * time.Microsecond),
				QPUService: Duration(time.Millisecond),
			}},
			{Name: "large", Weight: 1, Dist: Exponential, Profile: Profile{
				PreProcess:  Duration(8 * time.Millisecond),
				QPUService:  Duration(4 * time.Millisecond),
				PostProcess: Duration(time.Millisecond),
			}},
		},
		System:  SystemSpec{Kind: "shared", Hosts: 4},
		Horizon: Horizon{Jobs: 100},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sc := validScenario()
	data, err := sc.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Errorf("round trip changed the scenario:\n in: %+v\nout: %+v", sc, got)
	}
	// Durations must be human-readable strings on the wire, not ns counts.
	if !strings.Contains(string(data), `"2ms"`) {
		t.Errorf("encoded scenario lacks string durations:\n%s", data)
	}
}

// randomScenario builds a structurally valid scenario from an RNG; the
// round-trip property test below runs it across many draws.
func randomScenario(rng *rand.Rand) *Scenario {
	sc := &Scenario{Seed: rng.Int63()}
	switch rng.Intn(4) {
	case 0:
		sc.Arrival = Arrival{Kind: Poisson, Rate: 1 + rng.Float64()*999}
	case 1:
		sc.Arrival = Arrival{Kind: Uniform, Rate: 1 + rng.Float64()*999}
	case 2:
		sc.Arrival = Arrival{Kind: ClosedLoop, Clients: 1 + rng.Intn(16),
			Think: Duration(rng.Intn(int(10 * time.Millisecond)))}
	case 3:
		offs := make([]Duration, 1+rng.Intn(8))
		var t Duration
		for i := range offs {
			t += Duration(rng.Intn(int(time.Millisecond)))
			offs[i] = t
		}
		sc.Arrival = Arrival{Kind: Trace, Trace: offs}
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		c := JobClass{
			Name:   string(rune('a' + i)),
			Weight: 0.1 + rng.Float64(),
			Profile: Profile{
				PreProcess:  Duration(1 + rng.Intn(int(5*time.Millisecond))),
				Network:     Duration(rng.Intn(int(100 * time.Microsecond))),
				QPUService:  Duration(1 + rng.Intn(int(2*time.Millisecond))),
				PostProcess: Duration(rng.Intn(int(time.Millisecond))),
			},
		}
		if rng.Intn(2) == 0 {
			c.Dist = Exponential
		}
		sc.Mix = append(sc.Mix, c)
	}
	hosts := 1 + rng.Intn(8)
	switch rng.Intn(3) {
	case 0:
		sc.System = SystemSpec{Kind: "asymmetric", Hosts: 1}
	case 1:
		sc.System = SystemSpec{Kind: "shared", Hosts: hosts}
	case 2:
		sc.System = SystemSpec{Kind: "dedicated", Hosts: hosts}
	}
	if sc.Arrival.Kind == Trace {
		sc.Horizon = Horizon{Jobs: 1 + rng.Intn(len(sc.Arrival.Trace))}
	} else if rng.Intn(2) == 0 {
		sc.Horizon = Horizon{Jobs: 1 + rng.Intn(1000)}
	} else {
		sc.Horizon = Horizon{Duration: Duration(1 + rng.Intn(int(time.Second)))}
	}
	return sc
}

func TestRandomizedRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		sc := randomScenario(rng)
		data, err := sc.Encode()
		if err != nil {
			t.Fatalf("trial %d: Encode of %+v: %v", trial, sc, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v\n%s", trial, err, data)
		}
		if !reflect.DeepEqual(sc, got) {
			t.Fatalf("trial %d: round trip changed the scenario:\n in: %+v\nout: %+v", trial, sc, got)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"negative rate", func(sc *Scenario) { sc.Arrival.Rate = -3 }, "rate > 0"},
		{"zero rate", func(sc *Scenario) { sc.Arrival.Rate = 0 }, "rate > 0"},
		{"degenerate rate", func(sc *Scenario) { sc.Arrival.Rate = 5e-324 }, "outside"},
		{"infinite rate", func(sc *Scenario) { sc.Arrival.Rate = math.Inf(1) }, "outside"},
		{"unknown arrival kind", func(sc *Scenario) { sc.Arrival.Kind = "bursty" }, "unknown arrival kind"},
		{"empty mix", func(sc *Scenario) { sc.Mix = nil }, "empty job mix"},
		{"zero weight", func(sc *Scenario) { sc.Mix[0].Weight = 0 }, "weight > 0"},
		{"unknown dist", func(sc *Scenario) { sc.Mix[0].Dist = "pareto" }, "unknown dist"},
		{"negative phase", func(sc *Scenario) { sc.Mix[0].Profile.PreProcess = -1 }, "negative phase"},
		{"zero service", func(sc *Scenario) { sc.Mix[0].Profile = Profile{} }, "zero total service"},
		{"unknown system", func(sc *Scenario) { sc.System.Kind = "mesh" }, "unknown system kind"},
		{"no hosts", func(sc *Scenario) { sc.System.Hosts = 0 }, "host"},
		{"no horizon", func(sc *Scenario) { sc.Horizon = Horizon{} }, "jobs or duration"},
		{"negative horizon", func(sc *Scenario) { sc.Horizon.Jobs = -5 }, "negative horizon"},
		{"closed loop no clients", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: ClosedLoop}
		}, "clients >= 1"},
		{"unsorted trace", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Trace, Trace: []Duration{5, 2}}
			sc.Horizon = Horizon{Jobs: 2}
		}, "ascending"},
		{"empty trace", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Trace}
		}, "at least one offset"},
		{"trace shorter than horizon", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Trace, Trace: []Duration{1, 2}}
			sc.Horizon = Horizon{Jobs: 5}
		}, "trace holds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScenario()
			tc.mut(sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", sc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsBadJSON(t *testing.T) {
	for _, bad := range []string{
		"", "{", `{"arrival": {"kind": "poisson", "rate": "fast"}}`,
		`{"mix": [{"profile": {"preProcess": "three seconds"}}]}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) succeeded", bad)
		}
	}
}

func TestJobAtDeterministicAndDistributed(t *testing.T) {
	sc := validScenario()
	counts := make([]int, len(sc.Mix))
	const n = 20000
	var sumExp time.Duration
	for i := 0; i < n; i++ {
		j := sc.JobAt(i)
		if again := sc.JobAt(i); !reflect.DeepEqual(j, again) {
			t.Fatalf("JobAt(%d) not deterministic: %+v vs %+v", i, j, again)
		}
		counts[j.Class]++
		if j.Class == 1 {
			sumExp += j.Profile.Total()
		}
	}
	// Class frequencies should track the 3:1 weights.
	frac := float64(counts[0]) / n
	if frac < 0.72 || frac > 0.78 {
		t.Errorf("class 0 frequency %.3f, want ~0.75", frac)
	}
	// Exponential scaling preserves the mean total.
	mean := sumExp / time.Duration(counts[1])
	want := sc.Mix[1].Profile.Arch().Total()
	if ratio := float64(mean) / float64(want); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("exp class mean total %v, want ~%v", mean, want)
	}
}

func TestArrivalGenerators(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		sc := validScenario()
		sc.Arrival = Arrival{Kind: Uniform, Rate: 1000}
		g, err := sc.Arrivals()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 5; i++ {
			off, ok := g.Next()
			if !ok || off != time.Duration(i)*time.Millisecond {
				t.Fatalf("uniform arrival %d = %v, %v", i, off, ok)
			}
		}
	})
	t.Run("poisson", func(t *testing.T) {
		sc := validScenario()
		g1, _ := sc.Arrivals()
		g2, _ := sc.Arrivals()
		var last time.Duration
		n := 0
		var sum time.Duration
		for i := 0; i < 10000; i++ {
			a, ok1 := g1.Next()
			b, ok2 := g2.Next()
			if !ok1 || !ok2 || a != b {
				t.Fatalf("poisson stream not deterministic at %d: %v vs %v", i, a, b)
			}
			if a < last {
				t.Fatalf("arrival %d went backwards: %v after %v", i, a, last)
			}
			sum += a - last
			last = a
			n++
		}
		mean := sum / time.Duration(n)
		want := time.Duration(float64(time.Second) / sc.Arrival.Rate)
		if ratio := float64(mean) / float64(want); ratio < 0.95 || ratio > 1.05 {
			t.Errorf("poisson mean gap %v, want ~%v", mean, want)
		}
	})
	t.Run("trace", func(t *testing.T) {
		sc := validScenario()
		sc.Arrival = Arrival{Kind: Trace, Trace: []Duration{1, 2, 5}}
		sc.Horizon = Horizon{Jobs: 3}
		g, err := sc.Arrivals()
		if err != nil {
			t.Fatal(err)
		}
		var got []time.Duration
		for {
			off, ok := g.Next()
			if !ok {
				break
			}
			got = append(got, off)
		}
		if !reflect.DeepEqual(got, []time.Duration{1, 2, 5}) {
			t.Errorf("trace arrivals = %v", got)
		}
	})
	t.Run("rate process exhausts instead of overflowing", func(t *testing.T) {
		// MinRate keeps single gaps representable; a generator pushed past
		// the end of virtual time must stop, not go negative.
		g := &ArrivalGen{spec: Arrival{Kind: Uniform, Rate: MinRate}, rng: validScenario().ArrivalRNG()}
		g.now = time.Duration(1<<63 - 1) // one gap short of overflow
		if off, ok := g.Next(); ok {
			t.Errorf("overflowing uniform generator returned %v", off)
		}
		g = &ArrivalGen{spec: Arrival{Kind: Poisson, Rate: MinRate}, rng: validScenario().ArrivalRNG()}
		g.now = time.Duration(1<<63 - 1)
		if off, ok := g.Next(); ok {
			t.Errorf("overflowing poisson generator returned %v", off)
		}
	})
	t.Run("closed loop has no open stream", func(t *testing.T) {
		sc := validScenario()
		sc.Arrival = Arrival{Kind: ClosedLoop, Clients: 2}
		if _, err := sc.Arrivals(); err == nil {
			t.Error("Arrivals accepted a closed-loop scenario")
		}
	})
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`1500000`), &d); err != nil || d.D() != 1500*time.Microsecond {
		t.Errorf("numeric duration: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"1.5ms"`), &d); err != nil || d.D() != 1500*time.Microsecond {
		t.Errorf("string duration: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Error("bool duration accepted")
	}
}
