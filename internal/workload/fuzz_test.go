package workload

import "testing"

// FuzzDecodeScenario pins the scenario decoder's contract: arbitrary bytes
// either decode into a scenario that passes Validate, or error — never
// panic, and never yield a scenario a consumer would have to re-check.
func FuzzDecodeScenario(f *testing.F) {
	if data, err := validScenario().Encode(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},"mix":[{"name":"a","weight":1,` +
		`"profile":{"preProcess":"1ms","qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":2},"horizon":{"jobs":10}}`))
	f.Add([]byte(`{"arrival":{"kind":"trace","trace":["1ms","2ms"]}}`))
	// Policy-layer fields: a valid priority/fair scenario, an unknown
	// policy, and hostile priority/weight values.
	f.Add([]byte(`{"seed":3,"policy":"priority","arrival":{"kind":"poisson","rate":5},` +
		`"mix":[{"name":"hi","weight":4,"priority":9,"profile":{"preProcess":"1ms","qpuService":"1ms"}},` +
		`{"name":"lo","weight":1,"priority":-2,"profile":{"preProcess":"2ms","qpuService":"1ms"}}],` +
		`"system":{"kind":"dedicated","hosts":2},"horizon":{"jobs":5}}`))
	f.Add([]byte(`{"policy":"lifo","arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	f.Add([]byte(`{"policy":"fair","arrival":{"kind":"uniform","rate":1e308},` +
		`"mix":[{"name":"a","weight":1e-300,"priority":9223372036854775807,` +
		`"profile":{"qpuService":1}}],"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	f.Add([]byte(`{"horizon":{"duration":-1}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(data)
		if err != nil {
			return
		}
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("Decode returned a scenario failing Validate: %v\n%s", verr, data)
		}
		// The sampling entry points must hold on any decoded scenario.
		_ = sc.JobAt(0)
		if sc.Arrival.Kind != ClosedLoop {
			g, err := sc.Arrivals()
			if err != nil {
				t.Fatalf("Arrivals on a valid scenario: %v", err)
			}
			g.Next()
		}
	})
}
