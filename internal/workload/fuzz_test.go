package workload

import (
	"testing"
	"time"
)

// FuzzDecodeScenario pins the scenario decoder's contract: arbitrary bytes
// either decode into a scenario that passes Validate, or error — never
// panic, and never yield a scenario a consumer would have to re-check.
func FuzzDecodeScenario(f *testing.F) {
	if data, err := validScenario().Encode(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},"mix":[{"name":"a","weight":1,` +
		`"profile":{"preProcess":"1ms","qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":2},"horizon":{"jobs":10}}`))
	f.Add([]byte(`{"arrival":{"kind":"trace","trace":["1ms","2ms"]}}`))
	// Policy-layer fields: a valid priority/fair scenario, an unknown
	// policy, and hostile priority/weight values.
	f.Add([]byte(`{"seed":3,"policy":"priority","arrival":{"kind":"poisson","rate":5},` +
		`"mix":[{"name":"hi","weight":4,"priority":9,"profile":{"preProcess":"1ms","qpuService":"1ms"}},` +
		`{"name":"lo","weight":1,"priority":-2,"profile":{"preProcess":"2ms","qpuService":"1ms"}}],` +
		`"system":{"kind":"dedicated","hosts":2},"horizon":{"jobs":5}}`))
	f.Add([]byte(`{"policy":"lifo","arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	f.Add([]byte(`{"policy":"fair","arrival":{"kind":"uniform","rate":1e308},` +
		`"mix":[{"name":"a","weight":1e-300,"priority":9223372036854775807,` +
		`"profile":{"qpuService":1}}],"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	f.Add([]byte(`{"horizon":{"duration":-1}}`))
	f.Add([]byte(`not json`))
	// Modulated arrival processes: a valid example of each kind, then
	// hostile shape parameters — zero-period sinusoids, negative burst
	// rates, overflowing flash peaks.
	f.Add([]byte(`{"seed":9,"arrival":{"kind":"sinusoid","rate":100,"period":"500ms","amplitude":0.7},` +
		`"mix":[{"name":"a","weight":1,"profile":{"preProcess":"1ms","qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":2},"horizon":{"jobs":10}}`))
	f.Add([]byte(`{"seed":9,"arrival":{"kind":"burst","rate":20,"burstRate":200,"burstOn":"100ms","burstOff":"300ms"},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":2},"horizon":{"jobs":10}}`))
	f.Add([]byte(`{"seed":9,"arrival":{"kind":"flash","rate":50,"flashAt":"200ms","flashFor":"100ms","flashFactor":4},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":2},"horizon":{"jobs":10}}`))
	f.Add([]byte(`{"arrival":{"kind":"sinusoid","rate":1,"period":"0s","amplitude":2},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	f.Add([]byte(`{"arrival":{"kind":"burst","rate":1,"burstRate":-100,"burstOn":"-1ms","burstOff":"1ms"},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	f.Add([]byte(`{"arrival":{"kind":"flash","rate":1e308,"flashFor":"1ms","flashFactor":1e308},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1}}`))
	// Fault specs: a full valid regime, then hostile values — negative
	// MTBF, probability > 1, a retry storm, a sub-1 straggler cap.
	f.Add([]byte(`{"seed":9,"arrival":{"kind":"poisson","rate":50},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"dedicated","hosts":2},"horizon":{"jobs":10},` +
		`"faults":{"deviceMTBF":"400ms","deviceDowntime":"80ms","stragglerProb":0.05,` +
		`"stragglerAlpha":1.5,"stragglerCap":20,"dropProb":0.1,"maxRetries":4,"backoff":"2ms"},` +
		`"band":{"lo":0.5,"hi":3}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"faults":{"deviceMTBF":"-1ms","dropProb":1.5,"maxRetries":100000}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"faults":{"deviceMTBF":"1s","stragglerCap":0.01,"backoff":"2h"}}`))
	// Elastic membership schedules: a valid 2→4 scale-out, a drain, then
	// hostile schedules — negative times, a join of an already-present
	// shard, a drain of an unknown shard, overlapping event times, and a
	// schedule that would drain the last shard.
	f.Add([]byte(`{"seed":5,"arrival":{"kind":"poisson","rate":100},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"dedicated","hosts":2},"horizon":{"jobs":50},` +
		`"cluster":{"shards":2,"stealThreshold":4,"events":[` +
		`{"kind":"join","shard":2,"at":"100ms"},{"kind":"join","shard":3,"at":"200ms"}]}}`))
	f.Add([]byte(`{"seed":5,"arrival":{"kind":"poisson","rate":100},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"dedicated","hosts":2},"horizon":{"jobs":50},` +
		`"cluster":{"shards":3,"events":[{"kind":"drain","shard":1,"at":"150ms"}]}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"cluster":{"shards":2,"events":[{"kind":"join","shard":2,"at":"-1ms"}]}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"cluster":{"shards":2,"events":[{"kind":"join","shard":1,"at":"1ms"}]}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"cluster":{"shards":2,"events":[{"kind":"drain","shard":7,"at":"1ms"}]}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"cluster":{"shards":2,"events":[` +
		`{"kind":"join","shard":2,"at":"5ms"},{"kind":"drain","shard":0,"at":"5ms"}]}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},` +
		`"cluster":{"shards":2,"events":[` +
		`{"kind":"drain","shard":0,"at":"1ms"},{"kind":"drain","shard":1,"at":"2ms"}]}}`))
	// Hostile bands: inverted, zero, infinite.
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},"band":{"lo":3,"hi":0.5}}`))
	f.Add([]byte(`{"arrival":{"kind":"poisson","rate":1},` +
		`"mix":[{"name":"a","weight":1,"profile":{"qpuService":"1ms"}}],` +
		`"system":{"kind":"shared","hosts":1},"horizon":{"jobs":1},"band":{"lo":0,"hi":1e999}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(data)
		if err != nil {
			return
		}
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("Decode returned a scenario failing Validate: %v\n%s", verr, data)
		}
		// The sampling entry points must hold on any decoded scenario.
		_ = sc.JobAt(0)
		if sc.Arrival.Kind != ClosedLoop {
			g, err := sc.Arrivals()
			if err != nil {
				t.Fatalf("Arrivals on a valid scenario: %v", err)
			}
			g.Next()
		}
		// Fault samplers must hold on any validated spec: drop plans bounded
		// by the retry budget, outage schedules ordered and disjoint.
		p := sc.DropPlanFor(0)
		if p.Drops < 0 || p.Drops > sc.RetryLimit()+1 {
			t.Fatalf("drop plan %+v outside the retry budget %d", p, sc.RetryLimit())
		}
		prevEnd := time.Duration(-1)
		for _, o := range sc.OutageSchedule(0, 100*time.Millisecond) {
			if o.For <= 0 || o.At <= prevEnd {
				t.Fatalf("malformed outage schedule: %+v", o)
			}
			prevEnd = o.At + o.For
		}
		// Membership schedules that validated are strictly time-ordered and
		// stay within the shard cap — the invariants the DES and the live
		// replay rely on without re-checking.
		if n := sc.TotalShards(); n < 1 || n > MaxShards {
			t.Fatalf("TotalShards %d outside [1, %d] on a validated scenario", n, MaxShards)
		}
		lastAt := Duration(-1)
		for _, e := range sc.MemberEvents() {
			if e.At <= lastAt {
				t.Fatalf("validated membership events not strictly ordered: %+v", sc.MemberEvents())
			}
			lastAt = e.At
		}
	})
}
