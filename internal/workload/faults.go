// Fault modeling: the adversarial half of a scenario. Where graph.Faults
// models *static* hardware defects (dead qubits baked into a topology), a
// FaultSpec models the *dynamic* failure processes an operating deployment
// rides out: devices dying mid-lease and coming back, heavy-tailed straggler
// anneal times, and TCP connections dropping on the wire path. Every fault
// draw derives from Scenario.Seed through parallel.DeriveSeed — per-device
// outage streams, per-job drop streams — so the discrete-event simulator and
// a live replay realize byte-identical fault schedules, and a storm run is
// one reproducible experiment, chaos included.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/splitexec/splitexec/internal/parallel"
)

// Fault-layer RNG stream indices, disjoint from arrivalStream and from the
// non-negative per-job profile streams.
const (
	outageStream = -0x6F757467 // "outg": per-device outage schedules
	dropStream   = -0x64726F70 // "drop": per-job connection-drop plans
)

// Fault-policy defaults, applied when the spec leaves the field zero.
const (
	// DefaultMaxRetries is the retry budget per job: attempts beyond the
	// first that a revoked lease or dropped connection may consume before
	// the job fails.
	DefaultMaxRetries = 3
	// DefaultBackoff is the pause before a retry re-enters the queue.
	DefaultBackoff = time.Millisecond
	// DefaultStragglerAlpha is the Pareto tail index of straggler anneal
	// multipliers: 1.5 has a finite mean but an infinite variance — the
	// regime where p99 and mean decouple.
	DefaultStragglerAlpha = 1.5
	// DefaultStragglerCap bounds the realized straggler multiplier so a
	// single tail draw cannot park a live worker beyond any test horizon.
	DefaultStragglerCap = 100.0
	// MaxRetryLimit bounds MaxRetries at validation: a hostile scenario
	// must not be able to ask for effectively unbounded retry storms.
	MaxRetryLimit = 1000
)

// FaultSpec declares a scenario's dynamic failure regime. The zero value of
// every field disables that fault class, so specs stay terse.
type FaultSpec struct {
	// DeviceMTBF is the per-device mean time between failures
	// (exponential). Zero disables device deaths.
	DeviceMTBF Duration `json:"deviceMTBF,omitempty"`
	// DeviceDowntime is the mean repair time of a dead device
	// (exponential). Required when DeviceMTBF is set.
	DeviceDowntime Duration `json:"deviceDowntime,omitempty"`

	// StragglerProb is the probability a job's QPU service time is
	// multiplied by a Pareto(1, StragglerAlpha) draw — the heavy-tailed
	// straggler anneal. Zero disables stragglers.
	StragglerProb float64 `json:"stragglerProb,omitempty"`
	// StragglerAlpha is the Pareto tail index (default 1.5; smaller is
	// heavier).
	StragglerAlpha float64 `json:"stragglerAlpha,omitempty"`
	// StragglerCap bounds the realized multiplier (default 100).
	StragglerCap float64 `json:"stragglerCap,omitempty"`

	// DropProb is the per-attempt probability that a job's submission is
	// lost on the wire (the TCP connection drops mid-request) and must be
	// retried after Backoff. Zero disables drops.
	DropProb float64 `json:"dropProb,omitempty"`

	// MaxRetries is the per-job retry budget shared by lease revocations,
	// connection drops and shard-loss re-dispatches (default 3). A job
	// that exhausts it fails.
	MaxRetries int `json:"maxRetries,omitempty"`
	// Backoff is the pause before each retry (default 1ms).
	Backoff Duration `json:"backoff,omitempty"`

	// Shard, when non-nil, kills one whole shard of a cluster scenario
	// mid-run — the router-tier fault the single-node fault classes above
	// cannot express. Requires Scenario.Cluster with at least two shards.
	Shard *ShardFault `json:"shard,omitempty"`
}

// ShardFault schedules the death of one cluster shard: at At the shard's
// hosts and devices vanish — in-flight jobs are aborted and re-dispatched to
// surviving shards against the shared MaxRetries/Backoff budget, and hash
// ownership rebalances with bounded key movement. A zero For keeps the
// shard dead for the rest of the run; otherwise it rejoins after For.
type ShardFault struct {
	Shard int      `json:"shard"`
	At    Duration `json:"at"`
	For   Duration `json:"for,omitempty"`
}

// validate checks the spec; comparisons are written so NaN never passes.
func (f *FaultSpec) validate() error {
	if f.DeviceMTBF < 0 || f.DeviceDowntime < 0 {
		return fmt.Errorf("workload: negative device fault times %v/%v", f.DeviceMTBF, f.DeviceDowntime)
	}
	if f.DeviceMTBF > 0 && f.DeviceDowntime == 0 {
		return fmt.Errorf("workload: deviceMTBF %v needs deviceDowntime > 0", f.DeviceMTBF)
	}
	if !(f.StragglerProb >= 0 && f.StragglerProb <= 1) {
		return fmt.Errorf("workload: stragglerProb %v outside [0, 1]", f.StragglerProb)
	}
	if f.StragglerAlpha != 0 && !(f.StragglerAlpha > 0 && !math.IsInf(f.StragglerAlpha, 0)) {
		return fmt.Errorf("workload: stragglerAlpha %v must be finite and > 0", f.StragglerAlpha)
	}
	if f.StragglerCap != 0 && !(f.StragglerCap >= 1 && !math.IsInf(f.StragglerCap, 0)) {
		return fmt.Errorf("workload: stragglerCap %v must be finite and >= 1", f.StragglerCap)
	}
	if !(f.DropProb >= 0 && f.DropProb <= 1) {
		return fmt.Errorf("workload: dropProb %v outside [0, 1]", f.DropProb)
	}
	if f.MaxRetries < 0 || f.MaxRetries > MaxRetryLimit {
		return fmt.Errorf("workload: maxRetries %d outside [0, %d]", f.MaxRetries, MaxRetryLimit)
	}
	if f.Backoff < 0 || f.Backoff.D() > time.Minute {
		return fmt.Errorf("workload: backoff %v outside [0, 1m]", f.Backoff)
	}
	if s := f.Shard; s != nil {
		if s.Shard < 0 {
			return fmt.Errorf("workload: negative shard index %d in shard fault", s.Shard)
		}
		if s.At < 0 || s.For < 0 {
			return fmt.Errorf("workload: negative shard fault times %v/%v", s.At, s.For)
		}
	}
	return nil
}

// RetryLimit is the scenario's effective per-job retry budget.
func (sc *Scenario) RetryLimit() int {
	if sc.Faults == nil || sc.Faults.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return sc.Faults.MaxRetries
}

// RetryBackoff is the scenario's effective retry backoff.
func (sc *Scenario) RetryBackoff() time.Duration {
	if sc.Faults == nil || sc.Faults.Backoff == 0 {
		return DefaultBackoff
	}
	return sc.Faults.Backoff.D()
}

// HasDeviceFaults reports whether the scenario injects device deaths.
func (sc *Scenario) HasDeviceFaults() bool {
	return sc.Faults != nil && sc.Faults.DeviceMTBF > 0
}

// stragglerScale draws the straggler multiplier for one job from its own
// RNG stream: 1 with probability 1-StragglerProb, else a capped
// Pareto(1, alpha) factor. rand.Float64 can return exactly 0, whose Pareto
// image is +Inf — the cap absorbs it.
func (f *FaultSpec) stragglerScale(u, v float64) float64 {
	if f == nil || f.StragglerProb <= 0 || u >= f.StragglerProb {
		return 1
	}
	alpha := f.StragglerAlpha
	if alpha == 0 {
		alpha = DefaultStragglerAlpha
	}
	cap := f.StragglerCap
	if cap == 0 {
		cap = DefaultStragglerCap
	}
	m := math.Pow(v, -1/alpha)
	if !(m < cap) { // catches +Inf and NaN alike
		m = cap
	}
	return m
}

// Outage is one scheduled device outage: the device dies At after t=0 and
// revives after For.
type Outage struct {
	At  time.Duration
	For time.Duration
}

// OutageGen lazily generates one device's outage schedule: alternating
// exponential up-times (mean DeviceMTBF) and down-times (mean
// DeviceDowntime) from the device's own DeriveSeed stream. Prefixes are
// stable: however far two consumers iterate, they see the same outages —
// the property that keeps DES and live fault schedules byte-identical.
type OutageGen struct {
	mtbf, down float64 // seconds
	rng        interface{ ExpFloat64() float64 }
	now        time.Duration
}

// OutageSource returns the outage generator for device dev, or nil when the
// scenario declares no device faults.
func (sc *Scenario) OutageSource(dev int) *OutageGen {
	if !sc.HasDeviceFaults() {
		return nil
	}
	return &OutageGen{
		mtbf: sc.Faults.DeviceMTBF.D().Seconds(),
		down: sc.Faults.DeviceDowntime.D().Seconds(),
		rng:  parallel.NewRand(parallel.DeriveSeed(parallel.DeriveSeed(sc.Seed, outageStream), dev)),
	}
}

// Next returns the device's next outage, or ok=false once the schedule's
// cumulative offset would overflow virtual time.
func (g *OutageGen) Next() (Outage, bool) {
	up := time.Duration(g.rng.ExpFloat64() * g.mtbf * float64(time.Second))
	at := g.now + up
	if at < g.now {
		return Outage{}, false
	}
	dur := time.Duration(g.rng.ExpFloat64() * g.down * float64(time.Second))
	if dur <= 0 {
		dur = 1 // a zero-length outage would revive before it died
	}
	end := at + dur
	if end < at {
		return Outage{}, false
	}
	g.now = end
	return Outage{At: at, For: dur}, true
}

// OutageSchedule materializes every outage of device dev starting before
// until — the form the live fault controller replays in wall time.
func (sc *Scenario) OutageSchedule(dev int, until time.Duration) []Outage {
	g := sc.OutageSource(dev)
	if g == nil {
		return nil
	}
	var out []Outage
	for {
		o, ok := g.Next()
		if !ok || o.At >= until {
			return out
		}
		out = append(out, o)
	}
}

// DropPlan is one job's deterministic connection-drop schedule: Drops
// submission attempts are lost on the wire (each followed by the retry
// backoff, except a fatal last), and Fatal marks a job whose whole retry
// budget dropped — it fails without ever being served.
type DropPlan struct {
	Drops int
	Fatal bool
}

// DropPlanFor samples job i's drop plan from its own DeriveSeed stream. The
// result depends only on (Seed, i), so the DES and the live load generator
// drop exactly the same requests.
func (sc *Scenario) DropPlanFor(i int) DropPlan {
	f := sc.Faults
	if f == nil || f.DropProb <= 0 {
		return DropPlan{}
	}
	rng := parallel.NewRand(parallel.DeriveSeed(parallel.DeriveSeed(sc.Seed, dropStream), i))
	attempts := sc.RetryLimit() + 1
	var p DropPlan
	for p.Drops < attempts && rng.Float64() < f.DropProb {
		p.Drops++
	}
	p.Fatal = p.Drops == attempts
	return p
}
