package workload

import (
	"math"
	"testing"
	"time"
)

func faultScenario(f *FaultSpec) *Scenario {
	return &Scenario{
		Seed:    7,
		Arrival: Arrival{Kind: Poisson, Rate: 100},
		Mix: []JobClass{{Name: "base", Weight: 1,
			Profile: Profile{PreProcess: Duration(time.Millisecond), QPUService: Duration(500 * time.Microsecond)}}},
		System:  SystemSpec{Kind: "dedicated", Hosts: 2},
		Horizon: Horizon{Jobs: 50},
		Faults:  f,
	}
}

// TestOutageSchedulePrefixStable: however far two consumers iterate a
// device's outage stream, they must see the same outages — the property that
// keeps DES and live fault schedules byte-identical.
func TestOutageSchedulePrefixStable(t *testing.T) {
	sc := faultScenario(&FaultSpec{DeviceMTBF: Duration(100 * time.Millisecond), DeviceDowntime: Duration(20 * time.Millisecond)})
	short := sc.OutageSchedule(0, time.Second)
	long := sc.OutageSchedule(0, 10*time.Second)
	if len(short) == 0 || len(long) <= len(short) {
		t.Fatalf("degenerate schedules: short %d, long %d outages", len(short), len(long))
	}
	for i, o := range short {
		if long[i] != o {
			t.Fatalf("outage %d differs between horizons: %+v vs %+v", i, o, long[i])
		}
	}
	// Regenerating from scratch reproduces the schedule exactly.
	again := sc.OutageSchedule(0, 10*time.Second)
	for i := range long {
		if again[i] != long[i] {
			t.Fatalf("outage %d not reproducible: %+v vs %+v", i, long[i], again[i])
		}
	}
}

// TestOutageStreamsPerDevice: different devices draw from disjoint streams —
// correlated fleet-wide blackouts would be a different (and wrong) model.
func TestOutageStreamsPerDevice(t *testing.T) {
	sc := faultScenario(&FaultSpec{DeviceMTBF: Duration(100 * time.Millisecond), DeviceDowntime: Duration(20 * time.Millisecond)})
	a := sc.OutageSchedule(0, 5*time.Second)
	b := sc.OutageSchedule(1, 5*time.Second)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty schedules")
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("devices 0 and 1 drew identical outage schedules")
	}
}

// TestOutageScheduleShape: outages are ordered, disjoint and positive.
func TestOutageScheduleShape(t *testing.T) {
	sc := faultScenario(&FaultSpec{DeviceMTBF: Duration(50 * time.Millisecond), DeviceDowntime: Duration(10 * time.Millisecond)})
	sched := sc.OutageSchedule(3, 20*time.Second)
	if len(sched) < 10 {
		t.Fatalf("only %d outages over 20s at 50ms MTBF", len(sched))
	}
	prevEnd := time.Duration(-1)
	for i, o := range sched {
		if o.For <= 0 {
			t.Fatalf("outage %d has non-positive duration %v", i, o.For)
		}
		if o.At <= prevEnd {
			t.Fatalf("outage %d at %v overlaps previous end %v", i, o.At, prevEnd)
		}
		prevEnd = o.At + o.For
	}
}

// TestNoFaultsNoOutages: a fault-free scenario has no outage source, and a
// spec without device faults yields empty schedules.
func TestNoFaultsNoOutages(t *testing.T) {
	sc := faultScenario(nil)
	if sc.HasDeviceFaults() {
		t.Error("HasDeviceFaults true without a fault spec")
	}
	if g := sc.OutageSource(0); g != nil {
		t.Error("OutageSource non-nil without a fault spec")
	}
	if s := sc.OutageSchedule(0, time.Hour); s != nil {
		t.Errorf("OutageSchedule = %v, want nil", s)
	}
	sc.Faults = &FaultSpec{DropProb: 0.5}
	if sc.HasDeviceFaults() {
		t.Error("HasDeviceFaults true with only drop faults")
	}
}

// TestDropPlanDeterministic: a job's drop plan depends only on (Seed, i).
func TestDropPlanDeterministic(t *testing.T) {
	sc := faultScenario(&FaultSpec{DropProb: 0.4, MaxRetries: 2})
	sawDrop, sawClean, sawFatal := false, false, false
	for i := 0; i < 200; i++ {
		p := sc.DropPlanFor(i)
		if p != sc.DropPlanFor(i) {
			t.Fatalf("job %d drop plan not deterministic", i)
		}
		if p.Drops < 0 || p.Drops > sc.RetryLimit()+1 {
			t.Fatalf("job %d drops %d outside [0, %d]", i, p.Drops, sc.RetryLimit()+1)
		}
		if p.Fatal != (p.Drops == sc.RetryLimit()+1) {
			t.Fatalf("job %d fatal flag inconsistent: %+v with limit %d", i, p, sc.RetryLimit())
		}
		switch {
		case p.Fatal:
			sawFatal = true
		case p.Drops > 0:
			sawDrop = true
		default:
			sawClean = true
		}
	}
	// At p=0.4 over 200 jobs, all three outcomes are overwhelmingly likely.
	if !sawDrop || !sawClean || !sawFatal {
		t.Errorf("outcome coverage: drop=%v clean=%v fatal=%v", sawDrop, sawClean, sawFatal)
	}
}

// TestDropPlanEdgeProbabilities: probability 0 never drops; probability 1
// always exhausts the whole budget fatally.
func TestDropPlanEdgeProbabilities(t *testing.T) {
	never := faultScenario(&FaultSpec{DropProb: 0})
	always := faultScenario(&FaultSpec{DropProb: 1, MaxRetries: 2})
	for i := 0; i < 50; i++ {
		if p := never.DropPlanFor(i); p.Drops != 0 || p.Fatal {
			t.Fatalf("job %d dropped at probability 0: %+v", i, p)
		}
		if p := always.DropPlanFor(i); !p.Fatal || p.Drops != 3 {
			t.Fatalf("job %d survived probability 1: %+v (want 3 fatal drops)", i, p)
		}
	}
}

// TestStragglerScale: the Pareto multiplier respects its cap, returns 1
// outside the straggler probability, and absorbs the u=0 → +Inf edge.
func TestStragglerScale(t *testing.T) {
	f := &FaultSpec{StragglerProb: 0.5, StragglerAlpha: 1.5, StragglerCap: 20}
	if got := f.stragglerScale(0.9, 0.5); got != 1 {
		t.Errorf("non-straggler draw scaled by %v, want 1", got)
	}
	if got := f.stragglerScale(0.1, 0); got != 20 {
		t.Errorf("v=0 (Pareto +Inf) scaled by %v, want the cap 20", got)
	}
	for _, v := range []float64{0.001, 0.1, 0.5, 0.99} {
		m := f.stragglerScale(0.1, v)
		if !(m >= 1 && m <= 20) {
			t.Errorf("scale(%v) = %v outside [1, cap]", v, m)
		}
	}
	// Defaults kick in when alpha/cap are zero.
	d := &FaultSpec{StragglerProb: 1}
	if got := d.stragglerScale(0, 0); got != DefaultStragglerCap {
		t.Errorf("default cap not applied: %v", got)
	}
	var nilSpec *FaultSpec
	if got := nilSpec.stragglerScale(0, 0); got != 1 {
		t.Errorf("nil spec scaled by %v, want 1", got)
	}
}

// TestStragglersScaleOnlyQPUPhase: under a straggler regime the host-side
// phases stay exactly at the class profile; only QPUService stretches — and
// the sampled jobs stay deterministic.
func TestStragglersScaleOnlyQPUPhase(t *testing.T) {
	sc := faultScenario(&FaultSpec{StragglerProb: 1, StragglerAlpha: 1.5, StragglerCap: 10})
	base := sc.Mix[0].Profile.Arch()
	stretched := false
	for i := 0; i < 100; i++ {
		j := sc.JobAt(i)
		if j != sc.JobAt(i) {
			t.Fatalf("job %d not deterministic under stragglers", i)
		}
		if j.Profile.PreProcess != base.PreProcess || j.Profile.PostProcess != base.PostProcess {
			t.Fatalf("job %d host phases changed: %+v", i, j.Profile)
		}
		if j.Profile.QPUService < base.QPUService {
			t.Fatalf("job %d QPU phase shrank: %v < %v", i, j.Profile.QPUService, base.QPUService)
		}
		if j.Profile.QPUService > base.QPUService {
			stretched = true
		}
	}
	if !stretched {
		t.Error("probability-1 stragglers never stretched a QPU phase")
	}
}

// TestFaultSpecValidation: hostile fault specs must be refused; NaN must
// never validate.
func TestFaultSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		f    FaultSpec
	}{
		{"negative MTBF", FaultSpec{DeviceMTBF: -1}},
		{"MTBF without downtime", FaultSpec{DeviceMTBF: Duration(time.Second)}},
		{"negative straggler prob", FaultSpec{StragglerProb: -0.1}},
		{"straggler prob > 1", FaultSpec{StragglerProb: 1.5}},
		{"NaN straggler prob", FaultSpec{StragglerProb: math.NaN()}},
		{"negative alpha", FaultSpec{StragglerAlpha: -2}},
		{"Inf alpha", FaultSpec{StragglerAlpha: math.Inf(1)}},
		{"NaN alpha", FaultSpec{StragglerAlpha: math.NaN()}},
		{"cap below 1", FaultSpec{StragglerCap: 0.5}},
		{"Inf cap", FaultSpec{StragglerCap: math.Inf(1)}},
		{"NaN drop prob", FaultSpec{DropProb: math.NaN()}},
		{"drop prob > 1", FaultSpec{DropProb: 2}},
		{"negative retries", FaultSpec{MaxRetries: -1}},
		{"retry storm", FaultSpec{MaxRetries: MaxRetryLimit + 1}},
		{"negative backoff", FaultSpec{Backoff: -1}},
		{"hour backoff", FaultSpec{Backoff: Duration(2 * time.Hour)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := faultScenario(&tc.f)
			if err := sc.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", tc.f)
			}
		})
	}
	// And the defaults resolve as documented.
	sc := faultScenario(&FaultSpec{})
	if sc.RetryLimit() != DefaultMaxRetries || sc.RetryBackoff() != DefaultBackoff {
		t.Errorf("defaults: limit %d backoff %v", sc.RetryLimit(), sc.RetryBackoff())
	}
}
