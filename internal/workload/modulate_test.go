package workload

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// Determinism and rate-integral properties of the modulated arrival
// processes. The storm pipeline's whole cross-validation story rests on the
// arrival stream depending only on Scenario.Seed — never on goroutine
// interleaving, worker count or how far a previous consumer iterated.

func modulatedScenario(kind ArrivalKind) *Scenario {
	sc := &Scenario{
		Seed: 42,
		Mix: []JobClass{{Name: "base", Weight: 1,
			Profile: Profile{PreProcess: Duration(time.Millisecond), QPUService: Duration(500 * time.Microsecond)}}},
		System:  SystemSpec{Kind: "shared", Hosts: 2},
		Horizon: Horizon{Jobs: 100},
	}
	switch kind {
	case Sinusoid:
		sc.Arrival = Arrival{Kind: Sinusoid, Rate: 200, Period: Duration(250 * time.Millisecond), Amplitude: 0.8}
	case Burst:
		sc.Arrival = Arrival{Kind: Burst, Rate: 50, BurstRate: 400,
			BurstOn: Duration(50 * time.Millisecond), BurstOff: Duration(150 * time.Millisecond)}
	case Flash:
		sc.Arrival = Arrival{Kind: Flash, Rate: 100, FlashAt: Duration(100 * time.Millisecond),
			FlashFor: Duration(200 * time.Millisecond), FlashFactor: 4}
	}
	return sc
}

// offsets materializes the first n arrival offsets of a fresh generator.
func offsets(t *testing.T, sc *Scenario, n int) []time.Duration {
	t.Helper()
	gen, err := sc.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]time.Duration, 0, n)
	for len(out) < n {
		off, ok := gen.Next()
		if !ok {
			t.Fatalf("arrival process exhausted after %d offsets", len(out))
		}
		out = append(out, off)
	}
	return out
}

// TestModulatedArrivalsDeterministic: regenerating the stream — including
// concurrently from many goroutines, the worker-count situation of a live
// replay — yields byte-identical offsets every time, and the offsets are
// strictly non-decreasing.
func TestModulatedArrivalsDeterministic(t *testing.T) {
	for _, kind := range []ArrivalKind{Sinusoid, Burst, Flash} {
		t.Run(string(kind), func(t *testing.T) {
			sc := modulatedScenario(kind)
			want := offsets(t, sc, 2000)
			for i := 1; i < len(want); i++ {
				if want[i] < want[i-1] {
					t.Fatalf("offsets regress at %d: %v < %v", i, want[i], want[i-1])
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					got := offsets(t, sc, len(want))
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("goroutine %d: offset %d = %v, want %v", g, i, got[i], want[i])
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestModulatedMeanRate pins the rate integral: over a long horizon the
// realized arrival rate of each modulated process must sit within 2% of the
// analytic MeanRate. (Flash's MeanRate is its baseline; the flash window is
// a transient whose contribution vanishes over the horizon.)
func TestModulatedMeanRate(t *testing.T) {
	for _, kind := range []ArrivalKind{Sinusoid, Burst, Flash} {
		t.Run(string(kind), func(t *testing.T) {
			sc := modulatedScenario(kind)
			mean := sc.Arrival.MeanRate()
			if !(mean > 0) {
				t.Fatalf("MeanRate = %v, want > 0", mean)
			}
			gen, err := sc.Arrivals()
			if err != nil {
				t.Fatal(err)
			}
			// Long horizon: enough whole periods/state cycles that the
			// modulation integrates out. 2% at ~horizon·mean arrivals keeps
			// the CLT noise floor comfortably below the tolerance.
			horizon := 2000 * time.Second
			n := 0
			for {
				off, ok := gen.Next()
				if !ok {
					t.Fatalf("process exhausted after %d arrivals", n)
				}
				if off > horizon {
					break
				}
				n++
			}
			realized := float64(n) / horizon.Seconds()
			if rel := math.Abs(realized-mean) / mean; rel > 0.02 {
				t.Errorf("realized rate %.2f/s vs analytic %.2f/s: %.1f%% off (want <= 2%%)",
					realized, mean, 100*rel)
			}
		})
	}
}

// TestBurstMeanRateFormula cross-checks the MMPP mean against a hand
// computation for one parameterization.
func TestBurstMeanRateFormula(t *testing.T) {
	a := Arrival{Kind: Burst, Rate: 10, BurstRate: 100,
		BurstOn: Duration(100 * time.Millisecond), BurstOff: Duration(300 * time.Millisecond)}
	// (100·0.1 + 10·0.3) / 0.4 = 32.5 jobs/s.
	if got, want := a.MeanRate(), 32.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
}

// TestSinusoidRateEnvelope: the thinning implementation must respect the
// declared envelope — no burst of arrivals can exceed the peak rate over a
// sustained window, and troughs must actually thin.
func TestSinusoidRateEnvelope(t *testing.T) {
	sc := modulatedScenario(Sinusoid)
	period := sc.Arrival.Period.D()
	offs := offsets(t, sc, 5000)
	// Count arrivals per half-period bucket; peak halves must outnumber
	// trough halves on average (amplitude 0.8 means a 9:1 intensity ratio
	// between the extremes).
	var peak, trough int
	for _, off := range offs {
		phase := float64(off%period) / float64(period)
		if phase < 0.5 { // sin > 0: the high half
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("sinusoid modulation invisible: %d peak-half vs %d trough-half arrivals", peak, trough)
	}
}

// TestArrivalGenIndependentOfJobStreams: interleaving JobAt calls (which use
// their own DeriveSeed streams) with arrival generation must not perturb the
// arrival offsets — the no-seed-leak property.
func TestArrivalGenIndependentOfJobStreams(t *testing.T) {
	sc := modulatedScenario(Burst)
	want := offsets(t, sc, 500)
	gen, err := sc.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		sc.JobAt(i) // interleaved per-job sampling
		off, ok := gen.Next()
		if !ok || off != want[i] {
			t.Fatalf("offset %d = %v (ok=%v), want %v — job streams leaked into the arrival stream", i, off, ok, want[i])
		}
	}
}

// TestModulatedValidation: hostile shape parameters must be refused, in both
// struct and JSON form.
func TestModulatedValidation(t *testing.T) {
	base := modulatedScenario(Sinusoid)
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"sinusoid zero period", func(sc *Scenario) { sc.Arrival.Period = 0 }},
		{"sinusoid negative amplitude", func(sc *Scenario) { sc.Arrival.Amplitude = -0.1 }},
		{"sinusoid amplitude > 1", func(sc *Scenario) { sc.Arrival.Amplitude = 1.5 }},
		{"sinusoid NaN amplitude", func(sc *Scenario) { sc.Arrival.Amplitude = math.NaN() }},
		{"burst zero burstRate", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Burst, Rate: 10, BurstOn: 1e6, BurstOff: 1e6}
		}},
		{"burst negative burstRate", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Burst, Rate: 10, BurstRate: -5, BurstOn: 1e6, BurstOff: 1e6}
		}},
		{"burst NaN burstRate", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Burst, Rate: 10, BurstRate: math.NaN(), BurstOn: 1e6, BurstOff: 1e6}
		}},
		{"burst zero on-time", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Burst, Rate: 10, BurstRate: 100, BurstOff: 1e6}
		}},
		{"flash factor below 1", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Flash, Rate: 10, FlashFor: 1e6, FlashFactor: 0.5}
		}},
		{"flash NaN factor", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Flash, Rate: 10, FlashFor: 1e6, FlashFactor: math.NaN()}
		}},
		{"flash zero window", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Flash, Rate: 10, FlashFactor: 2}
		}},
		{"flash peak overflow", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Flash, Rate: 1e300, FlashFor: 1e6, FlashFactor: 1e300}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := *base
			tc.mutate(&sc)
			if err := sc.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", sc.Arrival)
			}
		})
	}
}

// TestModulatedRoundTrip: the new arrival fields survive Encode→Decode.
func TestModulatedRoundTrip(t *testing.T) {
	for _, kind := range []ArrivalKind{Sinusoid, Burst, Flash} {
		sc := modulatedScenario(kind)
		sc.Faults = &FaultSpec{DropProb: 0.1, MaxRetries: 2, Backoff: Duration(2 * time.Millisecond)}
		sc.Band = &Band{Lo: 0.5, Hi: 3}
		data, err := sc.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", kind, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", kind, err)
		}
		if fmt.Sprintf("%+v", got.Arrival) != fmt.Sprintf("%+v", sc.Arrival) {
			t.Errorf("%s: arrival changed: %+v vs %+v", kind, got.Arrival, sc.Arrival)
		}
		if got.Faults == nil || *got.Faults != *sc.Faults {
			t.Errorf("%s: faults changed: %+v vs %+v", kind, got.Faults, sc.Faults)
		}
		if got.Band == nil || *got.Band != *sc.Band {
			t.Errorf("%s: band changed: %+v vs %+v", kind, got.Band, sc.Band)
		}
	}
}
