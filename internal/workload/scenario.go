// Package workload defines declarative open-system workload scenarios for
// the split-execution service: instead of the closed-batch question the
// architecture models answer ("submit N identical jobs, measure makespan"),
// a Scenario describes jobs *arriving over time* — a stochastic arrival
// process, a weighted mix of heterogeneous job classes, a deployment
// topology, and a horizon — the regime of the ROADMAP's
// millions-of-users north star, where the metric that matters is the
// response-time distribution, not makespan.
//
// Scenarios are data, not code: they marshal to and from JSON so the same
// file drives the discrete-event simulator (internal/des), the live load
// generator (internal/loadgen) and the `splitexec simulate` / `splitexec
// loadgen` subcommands. All randomness derives from Scenario.Seed through
// parallel.DeriveSeed, so a scenario names one reproducible experiment.
package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/sched"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("1.5ms", "200µs") so scenario files stay legible; it also accepts plain
// nanosecond numbers on decode.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String implements fmt.Stringer.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes either a duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("workload: bad duration %q: %w", x, err)
		}
		*d = Duration(parsed)
		return nil
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	}
	return fmt.Errorf("workload: duration must be a string or number, got %T", v)
}

// MinRate is the lowest arrival rate a scenario may declare: one job per
// ~11.6 days. It keeps every inter-arrival gap — even scaled by the far
// tail of an exponential draw — representable as a time.Duration.
const MinRate = 1e-6

// ArrivalKind names an arrival process.
type ArrivalKind string

// The supported arrival processes.
const (
	// Poisson arrivals: independent exponential inter-arrival gaps at
	// Rate jobs/second — the open-system M/M/c regime.
	Poisson ArrivalKind = "poisson"
	// Uniform arrivals: deterministic, evenly spaced gaps of 1/Rate
	// seconds — a paced load test.
	Uniform ArrivalKind = "uniform"
	// ClosedLoop arrivals: Clients submitters that each wait for their
	// job to complete, think for Think, and submit again — the classic
	// interactive closed system.
	ClosedLoop ArrivalKind = "closed"
	// Trace arrivals replay recorded arrival offsets from t=0 verbatim.
	Trace ArrivalKind = "trace"
	// Sinusoid arrivals: a non-homogeneous Poisson process whose rate
	// follows Rate·(1 + Amplitude·sin(2πt/Period)) — the diurnal load
	// curve every real service rides.
	Sinusoid ArrivalKind = "sinusoid"
	// Burst arrivals: a two-state Markov-modulated Poisson process that
	// alternates between a quiet state at Rate and an on state at
	// BurstRate, with exponentially distributed state holding times of
	// mean BurstOff and BurstOn.
	Burst ArrivalKind = "burst"
	// Flash arrivals: Poisson at Rate except during the flash-crowd
	// window [FlashAt, FlashAt+FlashFor), where the rate multiplies by
	// FlashFactor — the thundering-herd spike.
	Flash ArrivalKind = "flash"
)

// Arrival specifies when jobs enter the system.
type Arrival struct {
	Kind ArrivalKind `json:"kind"`
	// Rate is the arrival rate in jobs/second (Poisson, Uniform), the
	// mean rate (Sinusoid), the quiet-state rate (Burst) or the
	// baseline rate (Flash).
	Rate float64 `json:"rate,omitempty"`
	// Clients is the submitter population (ClosedLoop).
	Clients int `json:"clients,omitempty"`
	// Think is the per-client pause between completion and the next
	// submission (ClosedLoop).
	Think Duration `json:"think,omitempty"`
	// Trace holds recorded arrival offsets from t=0, ascending (Trace).
	Trace []Duration `json:"trace,omitempty"`

	// Period and Amplitude shape the Sinusoid process: the rate swings
	// Rate·(1 ± Amplitude) over each Period. Amplitude must lie in [0, 1].
	Period    Duration `json:"period,omitempty"`
	Amplitude float64  `json:"amplitude,omitempty"`

	// BurstRate, BurstOn and BurstOff shape the Burst process: the on
	// state arrives at BurstRate for an exponential mean of BurstOn,
	// then the process falls back to Rate for a mean of BurstOff.
	BurstRate float64  `json:"burstRate,omitempty"`
	BurstOn   Duration `json:"burstOn,omitempty"`
	BurstOff  Duration `json:"burstOff,omitempty"`

	// FlashAt, FlashFor and FlashFactor shape the Flash process: at
	// FlashAt the rate multiplies by FlashFactor for FlashFor.
	FlashAt     Duration `json:"flashAt,omitempty"`
	FlashFor    Duration `json:"flashFor,omitempty"`
	FlashFactor float64  `json:"flashFactor,omitempty"`
}

// MeanRate returns the long-run mean arrival rate of an open rate-driven
// process in jobs/second — the analytic anchor the rate-integral property
// tests pin the sampled streams against. Trace and closed-loop processes
// have no rate parameter and report 0.
func (a Arrival) MeanRate() float64 {
	switch a.Kind {
	case Poisson, Uniform, Sinusoid:
		// The sinusoid integrates to its base rate over whole periods.
		return a.Rate
	case Burst:
		on, off := a.BurstOn.D().Seconds(), a.BurstOff.D().Seconds()
		return (a.BurstRate*on + a.Rate*off) / (on + off)
	case Flash:
		return a.Rate // baseline; the flash window is a transient
	}
	return 0
}

// Dist names a per-job service-time distribution for a job class.
type Dist string

// The supported service-time distributions.
const (
	// Deterministic jobs use the class profile verbatim (the default).
	Deterministic Dist = "det"
	// Exponential jobs scale the whole profile by an Exp(1) draw, so the
	// end-to-end service time is exponential with the profile's mean while
	// the phase ratios (and therefore the contention structure) are
	// preserved — the single-class case is exactly M/M/c and validates
	// the simulator against des.Analytic.
	Exponential Dist = "exp"
)

// JobClass is one entry of the workload mix: a named arch.JobProfile drawn
// with probability proportional to Weight.
type JobClass struct {
	Name string `json:"name"`
	// Weight is the class's draw probability weight — and, under Policy
	// "fair", doubles as its fair-share weight: the backlog serves
	// classes in proportion to it.
	Weight float64 `json:"weight"`
	// Dist selects the service-time distribution; empty means det.
	Dist    Dist    `json:"dist,omitempty"`
	Profile Profile `json:"profile"`
	// Priority orders the class under Scenario.Policy "priority"; larger
	// is served sooner. It is ignored by the other policies.
	Priority int `json:"priority,omitempty"`
}

// Profile is the JSON form of an arch.JobProfile.
type Profile struct {
	PreProcess  Duration `json:"preProcess"`
	Network     Duration `json:"network,omitempty"`
	QPUService  Duration `json:"qpuService"`
	PostProcess Duration `json:"postProcess,omitempty"`
}

// Arch converts to the architecture-model profile.
func (p Profile) Arch() arch.JobProfile {
	return arch.JobProfile{
		PreProcess:  p.PreProcess.D(),
		Network:     p.Network.D(),
		QPUService:  p.QPUService.D(),
		PostProcess: p.PostProcess.D(),
	}
}

// FromArch converts an architecture-model profile to its JSON form.
func FromArch(p arch.JobProfile) Profile {
	return Profile{
		PreProcess:  Duration(p.PreProcess),
		Network:     Duration(p.Network),
		QPUService:  Duration(p.QPUService),
		PostProcess: Duration(p.PostProcess),
	}
}

// SystemSpec is the deployment topology the workload runs on, mirroring
// arch.System: "shared" is Fig. 1(b) (Hosts workers contending for one
// QPU), "dedicated" Fig. 1(c) (a QPU per host), "asymmetric" Fig. 1(a)
// (one host, one QPU).
type SystemSpec struct {
	Kind  string `json:"kind"`
	Hosts int    `json:"hosts"`
}

// Arch resolves the spec to an arch.System.
func (s SystemSpec) Arch() (arch.System, error) {
	sys := arch.System{Hosts: s.Hosts}
	switch s.Kind {
	case "asymmetric":
		sys.Kind = arch.AsymmetricMultiprocessor
	case "shared":
		sys.Kind = arch.SharedResource
	case "dedicated":
		sys.Kind = arch.DedicatedPerNode
	default:
		return sys, fmt.Errorf("workload: unknown system kind %q (want asymmetric, shared or dedicated)", s.Kind)
	}
	return sys, sys.Validate()
}

// QPUs returns the QPU fleet size of the deployment.
func (s SystemSpec) QPUs() int {
	if s.Kind == "dedicated" {
		return s.Hosts
	}
	return 1
}

// Horizon bounds a scenario run: admissions stop at Jobs arrivals or once
// Duration has elapsed — whichever binds first when both are set. Every
// admitted job runs to completion either way.
type Horizon struct {
	Jobs     int      `json:"jobs,omitempty"`
	Duration Duration `json:"duration,omitempty"`
}

// Band is a scenario's declared DES-vs-live acceptance band: the measured
// p99 sojourn must land within [Lo, Hi] × the DES prediction for the
// scenario to pass a storm replay. Fault-heavy scenarios declare wider
// bands — tail latency under injected chaos is intrinsically noisier than
// a stationary replay.
type Band struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Scenario is one declarative open-system workload experiment.
type Scenario struct {
	Name    string     `json:"name,omitempty"`
	Seed    int64      `json:"seed"`
	Arrival Arrival    `json:"arrival"`
	Mix     []JobClass `json:"mix"`
	System  SystemSpec `json:"system"`
	Horizon Horizon    `json:"horizon"`
	// Policy selects the host-backlog queue discipline (sched.Policy):
	// "fifo" (the default when empty), "priority", "sjf" or "fair". The
	// DES and the live dispatcher realize the same policy, so it is part
	// of the experiment spec, not the deployment.
	Policy sched.Policy `json:"policy,omitempty"`
	// Faults, when non-nil, is the adversarial regime: device deaths
	// mid-lease, heavy-tailed straggler anneals and wire-path connection
	// drops, all sampled from DeriveSeed streams so the DES and a live
	// replay realize byte-identical fault schedules (faults.go).
	Faults *FaultSpec `json:"faults,omitempty"`
	// Band, when non-nil, declares the scenario's DES-vs-live acceptance
	// band for the storm soak runner.
	Band *Band `json:"band,omitempty"`
	// Cluster, when non-nil, federates System across N shards behind a
	// consistent-hash router tier (cluster.go). The DES and the live
	// router realize the same ring, stealing rule and shard-loss
	// re-dispatch, so a cluster scenario stays one reproducible experiment.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
}

// Validate checks structural consistency; it is called by Decode and by
// every consumer (simulator, load generator) before a run.
func (sc *Scenario) Validate() error {
	switch sc.Arrival.Kind {
	case Poisson, Uniform, Sinusoid, Burst, Flash:
		if !(sc.Arrival.Rate > 0) {
			return fmt.Errorf("workload: %s arrivals need rate > 0, got %v", sc.Arrival.Kind, sc.Arrival.Rate)
		}
		// Bound the rate so a single inter-arrival gap (including the
		// exponential multiplier's tail) always fits a time.Duration —
		// sub-µHz rates would overflow gap arithmetic into negative
		// virtual times and garbage results.
		if math.IsInf(sc.Arrival.Rate, 0) || sc.Arrival.Rate < MinRate {
			return fmt.Errorf("workload: %s rate %v outside [%v, +inf) jobs/s", sc.Arrival.Kind, sc.Arrival.Rate, MinRate)
		}
		if err := sc.Arrival.validateModulation(); err != nil {
			return err
		}
	case ClosedLoop:
		if sc.Arrival.Clients < 1 {
			return fmt.Errorf("workload: closed-loop arrivals need clients >= 1, got %d", sc.Arrival.Clients)
		}
		if sc.Arrival.Think < 0 {
			return fmt.Errorf("workload: negative think time %v", sc.Arrival.Think)
		}
	case Trace:
		if len(sc.Arrival.Trace) == 0 {
			return fmt.Errorf("workload: trace arrivals need at least one offset")
		}
		if !sort.SliceIsSorted(sc.Arrival.Trace, func(i, j int) bool {
			return sc.Arrival.Trace[i] < sc.Arrival.Trace[j]
		}) {
			return fmt.Errorf("workload: trace offsets must be ascending")
		}
		if sc.Arrival.Trace[0] < 0 {
			return fmt.Errorf("workload: negative trace offset %v", sc.Arrival.Trace[0])
		}
	default:
		return fmt.Errorf("workload: unknown arrival kind %q", sc.Arrival.Kind)
	}
	if len(sc.Mix) == 0 {
		return fmt.Errorf("workload: empty job mix")
	}
	total := 0.0
	for i, c := range sc.Mix {
		if !(c.Weight > 0) {
			return fmt.Errorf("workload: mix[%d] %q needs weight > 0, got %v", i, c.Name, c.Weight)
		}
		switch c.Dist {
		case "", Deterministic, Exponential:
		default:
			return fmt.Errorf("workload: mix[%d] %q has unknown dist %q", i, c.Name, c.Dist)
		}
		if c.Priority > sched.MaxPriority || c.Priority < -sched.MaxPriority {
			return fmt.Errorf("workload: mix[%d] %q priority %d outside ±%d", i, c.Name, c.Priority, sched.MaxPriority)
		}
		p := c.Profile.Arch()
		if p.PreProcess < 0 || p.Network < 0 || p.QPUService < 0 || p.PostProcess < 0 {
			return fmt.Errorf("workload: mix[%d] %q has a negative phase time", i, c.Name)
		}
		if p.Total() <= 0 {
			return fmt.Errorf("workload: mix[%d] %q has zero total service time", i, c.Name)
		}
		total += c.Weight
	}
	if !sched.Valid(sc.Policy) {
		return fmt.Errorf("workload: unknown policy %q (want %v)", sc.Policy, sched.Policies())
	}
	if _, err := sc.System.Arch(); err != nil {
		return err
	}
	if sc.Horizon.Jobs < 0 || sc.Horizon.Duration < 0 {
		return fmt.Errorf("workload: negative horizon %+v", sc.Horizon)
	}
	if sc.Horizon.Jobs == 0 && sc.Horizon.Duration == 0 {
		return fmt.Errorf("workload: horizon needs jobs or duration")
	}
	if sc.Arrival.Kind == Trace && sc.Horizon.Jobs > len(sc.Arrival.Trace) {
		return fmt.Errorf("workload: horizon wants %d jobs but trace holds %d offsets",
			sc.Horizon.Jobs, len(sc.Arrival.Trace))
	}
	if sc.Cluster != nil {
		if err := sc.Cluster.validate(); err != nil {
			return err
		}
	}
	if sc.Faults != nil {
		if err := sc.Faults.validate(); err != nil {
			return err
		}
		if sf := sc.Faults.Shard; sf != nil {
			// A shard fault needs somewhere for the re-dispatched jobs to
			// go: a cluster of at least two shards, one of which is the
			// victim.
			if sc.Cluster == nil || sc.Cluster.Shards < 2 {
				return fmt.Errorf("workload: shard fault needs a cluster with >= 2 shards")
			}
			if sf.Shard >= sc.Cluster.Shards {
				return fmt.Errorf("workload: shard fault targets shard %d of %d", sf.Shard, sc.Cluster.Shards)
			}
		}
	}
	if b := sc.Band; b != nil {
		// NaN fails every comparison below, so hostile bands cannot slip
		// through as "always passing".
		if !(b.Lo > 0) || !(b.Hi >= b.Lo) || math.IsInf(b.Hi, 0) {
			return fmt.Errorf("workload: band [%v, %v] needs 0 < lo <= hi < +inf", b.Lo, b.Hi)
		}
	}
	return nil
}

// validateModulation checks the kind-specific shape parameters of the
// modulated arrival processes. All comparisons are written so NaN fails
// them: a NaN amplitude or factor must never validate.
func (a Arrival) validateModulation() error {
	switch a.Kind {
	case Sinusoid:
		if a.Period <= 0 {
			return fmt.Errorf("workload: sinusoid arrivals need period > 0, got %v", a.Period)
		}
		if !(a.Amplitude >= 0 && a.Amplitude <= 1) {
			return fmt.Errorf("workload: sinusoid amplitude %v outside [0, 1]", a.Amplitude)
		}
	case Burst:
		if !(a.BurstRate >= MinRate) || math.IsInf(a.BurstRate, 0) {
			return fmt.Errorf("workload: burst arrivals need burstRate in [%v, +inf), got %v", MinRate, a.BurstRate)
		}
		if a.BurstOn <= 0 || a.BurstOff <= 0 {
			return fmt.Errorf("workload: burst arrivals need burstOn and burstOff > 0, got %v/%v", a.BurstOn, a.BurstOff)
		}
	case Flash:
		if !(a.FlashFactor >= 1) || math.IsInf(a.FlashFactor, 0) {
			return fmt.Errorf("workload: flash arrivals need flashFactor >= 1, got %v", a.FlashFactor)
		}
		if a.FlashAt < 0 || a.FlashFor <= 0 {
			return fmt.Errorf("workload: flash window needs flashAt >= 0 and flashFor > 0, got %v/%v", a.FlashAt, a.FlashFor)
		}
		if !(a.Rate*a.FlashFactor < math.MaxFloat64) {
			return fmt.Errorf("workload: flash peak rate overflows")
		}
	}
	return nil
}

// Encode marshals the scenario to indented JSON.
func (sc *Scenario) Encode() ([]byte, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(sc, "", "  ")
}

// Decode unmarshals and validates a scenario file.
func Decode(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("workload: decoding scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// --- deterministic sampling --------------------------------------------------

// RNG stream indices: per-job streams use the job's submission index
// directly, so the arrival stream sits far outside any realistic job range.
const arrivalStream = -0x61727276 // "arrv"

// Job is one sampled job of a scenario: the class it drew and its realized
// (distribution-scaled) phase profile.
type Job struct {
	Class   int
	Profile arch.JobProfile
}

// JobAt deterministically samples job i of the scenario: the class is drawn
// from the weighted mix and the profile scaled per the class distribution,
// both from the job's own DeriveSeed stream. The result depends only on
// (Seed, i) — never on arrival order, worker count or transport — so the
// simulator and the live load generator realize byte-identical workloads.
func (sc *Scenario) JobAt(i int) Job {
	rng := parallel.NewRand(parallel.DeriveSeed(sc.Seed, i))
	idx := pickClass(sc.Mix, rng.Float64())
	c := sc.Mix[idx]
	p := c.Profile.Arch()
	if c.Dist == Exponential {
		scale := rng.ExpFloat64()
		p.PreProcess = scaleDur(p.PreProcess, scale)
		p.Network = scaleDur(p.Network, scale)
		p.QPUService = scaleDur(p.QPUService, scale)
		p.PostProcess = scaleDur(p.PostProcess, scale)
	}
	// Straggler anneals scale only the QPU phase — the anneal is what
	// straggles, not the host-side code. The draws happen only under an
	// active straggler regime so fault-free scenarios keep their exact
	// historical profiles.
	if f := sc.Faults; f != nil && f.StragglerProb > 0 {
		p.QPUService = scaleDur(p.QPUService, f.stragglerScale(rng.Float64(), rng.Float64()))
	}
	return Job{Class: idx, Profile: p}
}

// SchedJob returns the scheduling attributes of a sampled job: the class's
// priority and fair-share weight from the mix, and the realized profile's
// QPU and total service times as the SJF ordering key and fair-share charge.
// Both the simulator and the live load generator derive their sched.Job from
// here, so every policy orders the same information on both sides.
func (sc *Scenario) SchedJob(j Job) sched.Job {
	c := sc.Mix[j.Class]
	return sched.Job{
		Class:       j.Class,
		Priority:    c.Priority,
		Weight:      c.Weight,
		ExpectedQPU: j.Profile.QPUService,
		Cost:        j.Profile.Total(),
	}
}

func scaleDur(d time.Duration, s float64) time.Duration {
	return time.Duration(float64(d) * s)
}

func pickClass(mix []JobClass, u float64) int {
	total := 0.0
	for _, c := range mix {
		total += c.Weight
	}
	target := u * total
	acc := 0.0
	for i, c := range mix {
		acc += c.Weight
		if target < acc {
			return i
		}
	}
	return len(mix) - 1
}

// ArrivalRNG returns the scenario's dedicated arrival-process RNG stream.
func (sc *Scenario) ArrivalRNG() *rand.Rand {
	return parallel.NewRand(parallel.DeriveSeed(sc.Seed, arrivalStream))
}

// Arrivals returns a deterministic generator of open-system arrival
// offsets from t=0. Next returns (offset, true) until the process is
// exhausted (a trace runs out; rate processes never do). ClosedLoop
// scenarios have no open arrival stream — their arrivals are completion-
// driven — and Arrivals returns an error for them.
func (sc *Scenario) Arrivals() (*ArrivalGen, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Arrival.Kind == ClosedLoop {
		return nil, fmt.Errorf("workload: closed-loop scenarios have no open arrival stream")
	}
	return &ArrivalGen{spec: sc.Arrival, rng: sc.ArrivalRNG()}, nil
}

// ArrivalGen generates one scenario's arrival offsets lazily, so horizons
// of millions of jobs never materialize a slice.
type ArrivalGen struct {
	spec Arrival
	rng  *rand.Rand
	now  time.Duration
	n    int

	// Burst-process modulation state (modulate.go): whether the chain is
	// in its on state, and the virtual time that state ends.
	burstOn  bool
	stateEnd time.Duration
}

// Next returns the next arrival offset from t=0, or ok=false when the
// process is exhausted. A rate process exhausts itself if its cumulative
// offset would overflow a time.Duration (billions of ultra-slow arrivals)
// rather than hand out garbage times.
func (g *ArrivalGen) Next() (offset time.Duration, ok bool) {
	if g.spec.modulated() {
		off, ok := g.nextModulated()
		if ok {
			g.n++
		}
		return off, ok
	}
	switch g.spec.Kind {
	case Poisson:
		next := g.now + time.Duration(g.rng.ExpFloat64()/g.spec.Rate*float64(time.Second))
		if next < g.now {
			return 0, false // overflow: the process has outrun virtual time
		}
		g.now = next
	case Uniform:
		// Evenly spaced from the fixed rate; computed from the count to
		// avoid accumulating rounding drift over millions of arrivals.
		g.n++
		next := time.Duration(float64(g.n) / g.spec.Rate * float64(time.Second))
		if next < g.now {
			return 0, false
		}
		g.now = next
		return g.now, true
	case Trace:
		if g.n >= len(g.spec.Trace) {
			return 0, false
		}
		g.now = g.spec.Trace[g.n].D()
		g.n++
		return g.now, true
	default:
		return 0, false
	}
	g.n++
	return g.now, true
}
