// Time-varying arrival processes: the sampling layer behind the Sinusoid,
// Burst and Flash arrival kinds. All three are non-homogeneous Poisson
// processes realized by Lewis–Shedler thinning: candidate arrivals are drawn
// from a homogeneous process at the peak rate and accepted with probability
// rate(t)/peak. Every draw — candidate gap, acceptance uniform, burst state
// holding time — comes from the scenario's single arrival RNG stream in a
// fixed order, so the realized stream is byte-identical wherever it is
// sampled (DES, live load generator, property test), at any worker count.
package workload

import (
	"math"
	"time"
)

// modulated reports whether the kind needs the thinning path.
func (a Arrival) modulated() bool {
	switch a.Kind {
	case Sinusoid, Burst, Flash:
		return true
	}
	return false
}

// peakRate is the thinning envelope: an upper bound on the instantaneous
// rate, tight for all three processes.
func (a Arrival) peakRate() float64 {
	switch a.Kind {
	case Sinusoid:
		return a.Rate * (1 + a.Amplitude)
	case Burst:
		return math.Max(a.Rate, a.BurstRate)
	case Flash:
		return a.Rate * math.Max(1, a.FlashFactor)
	}
	return a.Rate
}

// rateAt evaluates the instantaneous arrival rate at offset t. For Burst it
// first advances the modulating Markov chain to t, drawing state holding
// times from the generator's stream.
func (g *ArrivalGen) rateAt(t time.Duration) float64 {
	a := g.spec
	switch a.Kind {
	case Sinusoid:
		phase := 2 * math.Pi * float64(t) / float64(a.Period)
		return a.Rate * (1 + a.Amplitude*math.Sin(phase))
	case Burst:
		g.advanceBurst(t)
		if g.burstOn {
			return a.BurstRate
		}
		return a.Rate
	case Flash:
		if t >= a.FlashAt.D() && t < a.FlashAt.D()+a.FlashFor.D() {
			return a.Rate * a.FlashFactor
		}
		return a.Rate
	}
	return a.Rate
}

// advanceBurst steps the two-state modulating chain until its current state
// covers t. The chain starts in the quiet state at t=0.
func (g *ArrivalGen) advanceBurst(t time.Duration) {
	for g.stateEnd <= t {
		mean := g.spec.BurstOff.D()
		if !g.burstOn {
			// Leaving the quiet state: the next holding time is an on
			// period.
			mean = g.spec.BurstOn.D()
		}
		g.burstOn = !g.burstOn
		hold := time.Duration(g.rng.ExpFloat64() * float64(mean))
		next := g.stateEnd + hold
		if next < g.stateEnd { // overflow: pin the chain in this state
			g.stateEnd = math.MaxInt64
			return
		}
		g.stateEnd = next
	}
}

// nextModulated draws the next accepted arrival of a thinned process.
func (g *ArrivalGen) nextModulated() (time.Duration, bool) {
	peak := g.spec.peakRate()
	for {
		gap := time.Duration(g.rng.ExpFloat64() / peak * float64(time.Second))
		next := g.now + gap
		if next < g.now {
			return 0, false // overflow: the process has outrun virtual time
		}
		g.now = next
		rate := g.rateAt(g.now)
		// The acceptance draw is consumed even when rate == peak would
		// make it redundant, keeping the stream's draw order independent
		// of float comparisons on the modulation boundary.
		if g.rng.Float64()*peak < rate {
			return g.now, true
		}
	}
}
