// Cluster topology: the federated half of a scenario. A ClusterSpec scales
// the per-shard deployment (SystemSpec) out to N shards behind a
// consistent-hash router tier — the regime of the ROADMAP's
// millions-of-users north star, where one node's worth of hosts and QPUs
// (the paper's Fig. 1 unit) is the building block, not the system. The
// shard-key derivation lives here so the discrete-event simulator and the
// live router (internal/router) resolve byte-identical shard assignments
// from the same ring.
package workload

import (
	"fmt"

	"github.com/splitexec/splitexec/internal/ring"
)

// MaxShards bounds the cluster fan-out a scenario may declare: hostile
// specs must not be able to demand memory for millions of shards.
const MaxShards = 256

// Membership event kinds: a shard joining the ring, or a planned drain
// (the shard leaves the ring gracefully — queued work re-routes, in-flight
// work completes — as opposed to the crash semantics of FaultSpec.Shard).
const (
	JoinEvent  = "join"
	DrainEvent = "drain"
)

// MemberEvent schedules a membership change at virtual time At. Joins must
// target fresh slots in order (the first join is shard Shards, the next
// Shards+1, …) — the same indices the live router assigns to dynamically
// added shards, which is what keeps the DES's ring member names and the
// router's in agreement. Drains may target any currently-present shard.
type MemberEvent struct {
	Kind  string   `json:"kind"`
	Shard int      `json:"shard"`
	At    Duration `json:"at"`
}

// ClusterSpec federates the scenario's System across Shards identical
// shards behind a consistent-hash router. Nil (the default) is the
// single-node deployment every pre-cluster scenario describes.
type ClusterSpec struct {
	// Shards is the initial shard count; each shard runs the full
	// SystemSpec (Hosts workers, QPUs() devices).
	Shards int `json:"shards"`
	// StealThreshold enables cross-shard work stealing: a job whose home
	// shard's backlog has reached this length is dispatched to the shard
	// with the shortest backlog instead (ties break on the lowest shard
	// index, keeping the decision deterministic). Zero disables stealing —
	// jobs always follow hash ownership.
	StealThreshold int `json:"stealThreshold,omitempty"`
	// Replicas is the ring's virtual-node count per shard; zero selects
	// ring.DefaultReplicas.
	Replicas int `json:"replicas,omitempty"`
	// Events schedules elastic membership changes — shard joins and
	// planned drains at virtual times — strictly ordered by time. The DES
	// realizes them deterministically and the storm runner drives the same
	// schedule through the live router's AddShard/DrainShard hooks.
	Events []MemberEvent `json:"events,omitempty"`
}

// validate checks the spec.
func (c *ClusterSpec) validate() error {
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("workload: cluster shards %d outside [1, %d]", c.Shards, MaxShards)
	}
	if c.StealThreshold < 0 {
		return fmt.Errorf("workload: negative stealThreshold %d", c.StealThreshold)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("workload: negative ring replicas %d", c.Replicas)
	}
	return c.validateEvents()
}

// validateEvents replays the membership schedule against the evolving
// member set, rejecting anything the router could not realize: negative or
// overlapping times, a join of a slot that is (or ever was) provisioned, a
// drain of an absent shard, or a schedule that empties the ring.
func (c *ClusterSpec) validateEvents() error {
	if len(c.Events) == 0 {
		return nil
	}
	present := make(map[int]bool, c.Shards)
	for i := 0; i < c.Shards; i++ {
		present[i] = true
	}
	provisioned := c.Shards // next fresh slot a join may claim
	live := c.Shards
	last := Duration(-1)
	for i, e := range c.Events {
		if e.At < 0 {
			return fmt.Errorf("workload: membership event %d has negative time %v", i, e.At)
		}
		if e.At <= last {
			return fmt.Errorf("workload: membership events must be strictly ordered in time (event %d at %v overlaps %v)", i, e.At, last)
		}
		last = e.At
		switch e.Kind {
		case JoinEvent:
			if present[e.Shard] {
				return fmt.Errorf("workload: membership event %d joins already-present shard %d", i, e.Shard)
			}
			if e.Shard != provisioned {
				return fmt.Errorf("workload: membership event %d joins shard %d; joins must claim fresh slots in order (next is %d)", i, e.Shard, provisioned)
			}
			if provisioned+1 > MaxShards {
				return fmt.Errorf("workload: membership events provision more than %d shards", MaxShards)
			}
			present[e.Shard] = true
			provisioned++
			live++
		case DrainEvent:
			if !present[e.Shard] {
				return fmt.Errorf("workload: membership event %d drains unknown shard %d", i, e.Shard)
			}
			if live == 1 {
				return fmt.Errorf("workload: membership event %d would drain the last shard", i)
			}
			present[e.Shard] = false
			live--
		default:
			return fmt.Errorf("workload: membership event %d has unknown kind %q (want %q or %q)", i, e.Kind, JoinEvent, DrainEvent)
		}
	}
	return nil
}

// ShardCount is the scenario's effective shard count (1 without a cluster).
func (sc *Scenario) ShardCount() int {
	if sc.Cluster == nil {
		return 1
	}
	return sc.Cluster.Shards
}

// StealThreshold is the scenario's effective work-stealing threshold
// (0 = stealing disabled).
func (sc *Scenario) StealThreshold() int {
	if sc.Cluster == nil {
		return 0
	}
	return sc.Cluster.StealThreshold
}

// ShardName is the ring member name of shard i. The DES, the live router
// and the capacity planner all derive membership from these names, so hash
// ownership agrees everywhere by construction.
func ShardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// ClassKey is the shard key of a profile job: jobs of one workload class
// share a key, so a class's working set (and its embedding-cache locality,
// for QUBO classes) stays pinned to one home shard.
func ClassKey(class int) string { return fmt.Sprintf("class-%d", class) }

// ClusterRing builds the scenario's full-membership hash ring, or nil for
// single-node scenarios.
func (sc *Scenario) ClusterRing() *ring.Ring {
	if sc.Cluster == nil {
		return nil
	}
	members := make([]string, sc.Cluster.Shards)
	for i := range members {
		members[i] = ShardName(i)
	}
	return ring.New(members, sc.Cluster.Replicas)
}

// HasShardFault reports whether the scenario kills a shard mid-run.
func (sc *Scenario) HasShardFault() bool {
	return sc.Faults != nil && sc.Faults.Shard != nil
}

// MemberEvents returns the scenario's membership schedule (nil-safe).
func (sc *Scenario) MemberEvents() []MemberEvent {
	if sc.Cluster == nil {
		return nil
	}
	return sc.Cluster.Events
}

// TotalShards is the number of shard slots the scenario ever provisions:
// the initial membership plus every scheduled join. The DES sizes its shard
// table — and the storm runner its service fleet — from this, so joined
// shards exist (devices, outage streams) before they enter the ring.
func (sc *Scenario) TotalShards() int {
	n := sc.ShardCount()
	for _, e := range sc.MemberEvents() {
		if e.Kind == JoinEvent && e.Shard+1 > n {
			n = e.Shard + 1
		}
	}
	return n
}
