// Cluster topology: the federated half of a scenario. A ClusterSpec scales
// the per-shard deployment (SystemSpec) out to N shards behind a
// consistent-hash router tier — the regime of the ROADMAP's
// millions-of-users north star, where one node's worth of hosts and QPUs
// (the paper's Fig. 1 unit) is the building block, not the system. The
// shard-key derivation lives here so the discrete-event simulator and the
// live router (internal/router) resolve byte-identical shard assignments
// from the same ring.
package workload

import (
	"fmt"

	"github.com/splitexec/splitexec/internal/ring"
)

// MaxShards bounds the cluster fan-out a scenario may declare: hostile
// specs must not be able to demand memory for millions of shards.
const MaxShards = 256

// ClusterSpec federates the scenario's System across Shards identical
// shards behind a consistent-hash router. Nil (the default) is the
// single-node deployment every pre-cluster scenario describes.
type ClusterSpec struct {
	// Shards is the shard count; each shard runs the full SystemSpec
	// (Hosts workers, QPUs() devices).
	Shards int `json:"shards"`
	// StealThreshold enables cross-shard work stealing: a job whose home
	// shard's backlog has reached this length is dispatched to the shard
	// with the shortest backlog instead (ties break on the lowest shard
	// index, keeping the decision deterministic). Zero disables stealing —
	// jobs always follow hash ownership.
	StealThreshold int `json:"stealThreshold,omitempty"`
	// Replicas is the ring's virtual-node count per shard; zero selects
	// ring.DefaultReplicas.
	Replicas int `json:"replicas,omitempty"`
}

// validate checks the spec.
func (c *ClusterSpec) validate() error {
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("workload: cluster shards %d outside [1, %d]", c.Shards, MaxShards)
	}
	if c.StealThreshold < 0 {
		return fmt.Errorf("workload: negative stealThreshold %d", c.StealThreshold)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("workload: negative ring replicas %d", c.Replicas)
	}
	return nil
}

// ShardCount is the scenario's effective shard count (1 without a cluster).
func (sc *Scenario) ShardCount() int {
	if sc.Cluster == nil {
		return 1
	}
	return sc.Cluster.Shards
}

// StealThreshold is the scenario's effective work-stealing threshold
// (0 = stealing disabled).
func (sc *Scenario) StealThreshold() int {
	if sc.Cluster == nil {
		return 0
	}
	return sc.Cluster.StealThreshold
}

// ShardName is the ring member name of shard i. The DES, the live router
// and the capacity planner all derive membership from these names, so hash
// ownership agrees everywhere by construction.
func ShardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// ClassKey is the shard key of a profile job: jobs of one workload class
// share a key, so a class's working set (and its embedding-cache locality,
// for QUBO classes) stays pinned to one home shard.
func ClassKey(class int) string { return fmt.Sprintf("class-%d", class) }

// ClusterRing builds the scenario's full-membership hash ring, or nil for
// single-node scenarios.
func (sc *Scenario) ClusterRing() *ring.Ring {
	if sc.Cluster == nil {
		return nil
	}
	members := make([]string, sc.Cluster.Shards)
	for i := range members {
		members[i] = ShardName(i)
	}
	return ring.New(members, sc.Cluster.Replicas)
}

// HasShardFault reports whether the scenario kills a shard mid-run.
func (sc *Scenario) HasShardFault() bool {
	return sc.Faults != nil && sc.Faults.Shard != nil
}
