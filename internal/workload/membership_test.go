package workload

import (
	"strings"
	"testing"
)

// elasticScenario is a minimal valid cluster scenario the membership tests
// mutate.
func elasticScenario(events ...MemberEvent) *Scenario {
	return &Scenario{
		Seed:    1,
		Arrival: Arrival{Kind: Poisson, Rate: 100},
		Mix: []JobClass{
			{Name: "a", Weight: 1, Profile: Profile{QPUService: Duration(1e6)}},
		},
		System:  SystemSpec{Kind: "dedicated", Hosts: 2},
		Horizon: Horizon{Jobs: 50},
		Cluster: &ClusterSpec{Shards: 2, Events: events},
	}
}

func TestMemberEventValidation(t *testing.T) {
	cases := []struct {
		name    string
		events  []MemberEvent
		wantErr string // empty = valid
	}{
		{"no events", nil, ""},
		{"scale out 2 to 4", []MemberEvent{
			{Kind: JoinEvent, Shard: 2, At: 1e6},
			{Kind: JoinEvent, Shard: 3, At: 2e6},
		}, ""},
		{"join then drain joined", []MemberEvent{
			{Kind: JoinEvent, Shard: 2, At: 1e6},
			{Kind: DrainEvent, Shard: 2, At: 5e6},
		}, ""},
		{"drain initial shard", []MemberEvent{
			{Kind: DrainEvent, Shard: 1, At: 3e6},
		}, ""},
		{"negative time", []MemberEvent{
			{Kind: JoinEvent, Shard: 2, At: -1},
		}, "negative time"},
		{"join already present", []MemberEvent{
			{Kind: JoinEvent, Shard: 1, At: 1e6},
		}, "already-present"},
		{"join skips a slot", []MemberEvent{
			{Kind: JoinEvent, Shard: 5, At: 1e6},
		}, "fresh slots in order"},
		{"rejoin drained slot", []MemberEvent{
			{Kind: DrainEvent, Shard: 1, At: 1e6},
			{Kind: JoinEvent, Shard: 1, At: 2e6},
		}, "fresh slots in order"},
		{"drain unknown shard", []MemberEvent{
			{Kind: DrainEvent, Shard: 7, At: 1e6},
		}, "unknown shard"},
		{"drain twice", []MemberEvent{
			{Kind: DrainEvent, Shard: 1, At: 1e6},
			{Kind: DrainEvent, Shard: 1, At: 2e6},
		}, "unknown shard"},
		{"overlapping times", []MemberEvent{
			{Kind: JoinEvent, Shard: 2, At: 1e6},
			{Kind: DrainEvent, Shard: 0, At: 1e6},
		}, "strictly ordered"},
		{"out of order", []MemberEvent{
			{Kind: JoinEvent, Shard: 2, At: 2e6},
			{Kind: JoinEvent, Shard: 3, At: 1e6},
		}, "strictly ordered"},
		{"drain the last shard", []MemberEvent{
			{Kind: DrainEvent, Shard: 0, At: 1e6},
			{Kind: DrainEvent, Shard: 1, At: 2e6},
		}, "last shard"},
		{"unknown kind", []MemberEvent{
			{Kind: "split", Shard: 2, At: 1e6},
		}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := elasticScenario(tc.events...).Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestTotalShards(t *testing.T) {
	sc := elasticScenario(
		MemberEvent{Kind: JoinEvent, Shard: 2, At: 1e6},
		MemberEvent{Kind: JoinEvent, Shard: 3, At: 2e6},
		MemberEvent{Kind: DrainEvent, Shard: 0, At: 3e6},
	)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sc.TotalShards(); got != 4 {
		t.Fatalf("TotalShards = %d, want 4 (2 initial + 2 joins)", got)
	}
	if got := elasticScenario().TotalShards(); got != 2 {
		t.Fatalf("TotalShards without events = %d, want 2", got)
	}
	single := elasticScenario()
	single.Cluster = nil
	if got := single.TotalShards(); got != 1 {
		t.Fatalf("TotalShards single-node = %d, want 1", got)
	}
}

// TestMemberEventRoundTrip pins the JSON shape of the schedule.
func TestMemberEventRoundTrip(t *testing.T) {
	sc := elasticScenario(
		MemberEvent{Kind: JoinEvent, Shard: 2, At: 1e6},
		MemberEvent{Kind: DrainEvent, Shard: 0, At: 2e6},
	)
	data, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.MemberEvents()
	if len(got) != 2 || got[0] != sc.Cluster.Events[0] || got[1] != sc.Cluster.Events[1] {
		t.Fatalf("round trip mangled events: %+v", got)
	}
}
