// Package stats provides the post-processing and analysis support used by
// the split-execution pipeline: the heapsort the paper's stage-3 model
// assumes, descriptive statistics, histograms, and the power-law/linear fits
// used to analyze timing scaling in the experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Heapsort sorts a in ascending order using the comparison function less,
// counting comparisons. The paper's stage-3 model assumes "an underlying
// heapsort algorithm is used to sort the readout results according to the
// value of the computed energy" with cost SortOps = R·log R; the returned
// count lets the simulated-execution path charge the measured work.
func Heapsort(n int, less func(i, j int) bool, swap func(i, j int)) (comparisons int) {
	cmp := func(i, j int) bool {
		comparisons++
		return less(i, j)
	}
	// Build max-heap.
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n, cmp, swap)
	}
	for end := n - 1; end > 0; end-- {
		swap(0, end)
		siftDown(0, end, cmp, swap)
	}
	return comparisons
}

func siftDown(root, end int, less func(i, j int) bool, swap func(i, j int)) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(child, child+1) {
			child++
		}
		if !less(root, child) {
			return
		}
		swap(root, child)
		root = child
	}
}

// HeapsortFloat64 sorts xs ascending in place and returns the comparison
// count.
func HeapsortFloat64(xs []float64) int {
	return Heapsort(len(xs),
		func(i, j int) bool { return xs[i] < xs[j] },
		func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Std        float64
	Median, P25, P75 float64
}

// Summarize computes descriptive statistics; it returns a zero Summary for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of a sorted sample using linear
// interpolation. It panics on empty input, on a NaN q, and on a sample
// containing NaN: sort.Float64s places NaNs first, so every quantile of such
// a sample would silently be garbage — loud rejection beats a poisoned
// latency digest.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if math.IsNaN(q) {
		panic("stats: NaN quantile requested")
	}
	if math.IsNaN(sorted[0]) {
		panic("stats: quantile of sample containing NaN")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts values into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram of xs with nbins bins spanning the data
// range (or [0,1] for empty/degenerate input).
func NewHistogram(xs []float64, nbins int) *Histogram {
	if nbins < 1 {
		panic(fmt.Sprintf("stats: nbins = %d", nbins))
	}
	h := &Histogram{Min: 0, Max: 1, Counts: make([]int, nbins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	if h.Max == h.Min {
		h.Max = h.Min + 1
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one observation (values outside [Min,Max] clamp to end bins).
func (h *Histogram) Add(x float64) {
	bin := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.Total++
}

// Mode returns the midpoint of the most populated bin.
func (h *Histogram) Mode() float64 {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + width*(float64(best)+0.5)
}

// LinearFit returns the least-squares line y = a + b·x and the coefficient of
// determination R². It panics when fewer than 2 points are given.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: linear fit needs >= 2 paired points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate x values in linear fit")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2
}

// PowerLawFit fits y = c·x^k by linear regression in log-log space,
// returning (c, k, R²). All inputs must be positive.
func PowerLawFit(xs, ys []float64) (c, k, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: power-law fit needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, r2 := LinearFit(lx, ly)
	return math.Exp(a), b, r2
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: geometric mean needs positive data")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
