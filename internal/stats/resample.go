package stats

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a percentile-bootstrap confidence interval for an
// arbitrary statistic of the sample: it redraws len(xs) observations with
// replacement resamples times, evaluates stat on each redraw, and returns
// the (1-conf)/2 and (1+conf)/2 quantiles of the resulting distribution.
// Timing experiments on the probabilistic annealer use this to put honest
// error bars on measured stage times.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, conf float64, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, errors.New("stats: empty sample")
	}
	if stat == nil {
		return 0, 0, errors.New("stats: nil statistic")
	}
	if resamples < 2 {
		return 0, 0, fmt.Errorf("stats: resamples %d < 2", resamples)
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0,1)", conf)
	}
	if rng == nil {
		return 0, 0, errors.New("stats: nil rng")
	}
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha), nil
}

// Mean is a convenience statistic for BootstrapCI.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median is a convenience statistic for BootstrapCI. It does not assume the
// input is sorted and does not modify it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	return Quantile(tmp, 0.5)
}

// TheilSen fits y ≈ a + b·x by the Theil–Sen estimator: b is the median of
// all pairwise slopes and a the median of y - b·x. Unlike LinearFit it is
// robust to outliers — useful when a few timing samples hit scheduler noise.
func TheilSen(xs, ys []float64) (a, b float64, err error) {
	n := len(xs)
	if n != len(ys) {
		return 0, 0, fmt.Errorf("stats: length mismatch %d vs %d", n, len(ys))
	}
	if n < 2 {
		return 0, 0, errors.New("stats: need at least 2 points")
	}
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[j] - xs[i]
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (ys[j]-ys[i])/dx)
		}
	}
	if len(slopes) == 0 {
		return 0, 0, errors.New("stats: all x values identical")
	}
	b = Median(slopes)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = ys[i] - b*xs[i]
	}
	a = Median(resid)
	return a, b, nil
}

// ECDF returns the empirical cumulative distribution function of the
// sample: F(x) = fraction of observations ≤ x. The returned closure is safe
// for concurrent use.
func ECDF(xs []float64) (func(float64) float64, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	return func(x float64) float64 {
		// Count of values ≤ x = index of first value > x.
		k := sort.SearchFloat64s(sorted, x)
		for k < len(sorted) && sorted[k] == x {
			k++
		}
		return float64(k) / n
	}, nil
}
