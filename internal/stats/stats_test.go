package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapsortFloat64Sorts(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2, 7}
	comps := HeapsortFloat64(xs)
	if !sort.Float64sAreSorted(xs) {
		t.Fatalf("not sorted: %v", xs)
	}
	if comps <= 0 {
		t.Error("no comparisons counted")
	}
}

func TestHeapsortEdgeCases(t *testing.T) {
	var empty []float64
	if c := HeapsortFloat64(empty); c != 0 {
		t.Errorf("empty sort comparisons = %d", c)
	}
	one := []float64{4}
	if c := HeapsortFloat64(one); c != 0 || one[0] != 4 {
		t.Error("singleton sort wrong")
	}
	dup := []float64{2, 2, 2}
	HeapsortFloat64(dup)
	if dup[0] != 2 || dup[2] != 2 {
		t.Error("duplicates mangled")
	}
}

// Property: heapsort agrees with the stdlib and costs O(n log n).
func TestHeapsortMatchesStdlib(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		comps := HeapsortFloat64(xs)
		for i := range xs {
			if xs[i] != want[i] {
				return false
			}
		}
		// Comparison bound: c <= 3·n·ceil(log2 n) is a loose safe bound.
		bound := 3 * float64(n) * math.Ceil(math.Log2(float64(n+1))+1)
		return float64(comps) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary not zero")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := Quantile(sorted, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 25 {
		t.Errorf("median = %v, want 25", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty quantile did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

// TestQuantileEdgeCases pins the boundary contract: q=0 and q=1 are exact
// order statistics (min and max, no interpolation error), a single-element
// sample answers that element for every q, and out-of-range q clamps.
func TestQuantileEdgeCases(t *testing.T) {
	// Values chosen so any accidental interpolation is visible: 0.1+0.3
	// style float error cannot produce these exactly.
	sorted := []float64{-7.25, 1.5, 2.75, 100.125, 1e9}
	if q := Quantile(sorted, 0); q != -7.25 {
		t.Errorf("q=0 = %v, want the minimum exactly", q)
	}
	if q := Quantile(sorted, 1); q != 1e9 {
		t.Errorf("q=1 = %v, want the maximum exactly", q)
	}
	if q := Quantile(sorted, -0.5); q != -7.25 {
		t.Errorf("q<0 = %v, want clamp to minimum", q)
	}
	if q := Quantile(sorted, 1.5); q != 1e9 {
		t.Errorf("q>1 = %v, want clamp to maximum", q)
	}
	single := []float64{42.5}
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if v := Quantile(single, q); v != 42.5 {
			t.Errorf("single-element q=%v = %v, want 42.5", q, v)
		}
	}
}

// TestQuantileRejectsNaN: a NaN q and a NaN-bearing sample must both panic
// rather than silently poison a latency digest (sort.Float64s places NaNs
// first, so every quantile of such a sample would be garbage).
func TestQuantileRejectsNaN(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NaN q", func() { Quantile([]float64{1, 2}, math.NaN()) })
	nanSample := []float64{math.NaN(), 1, 2}
	sort.Float64s(nanSample)
	mustPanic("NaN sample", func() { Quantile(nanSample, 0.5) })
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 1, 1, 2}, 2)
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Counts[0]+h.Counts[1] != 5 {
		t.Errorf("counts = %v", h.Counts)
	}
	// Mode bin contains the 1s.
	m := h.Mode()
	if m < 0 || m > 2 {
		t.Errorf("mode = %v out of range", m)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	if h.Total != 3 {
		t.Errorf("total = %d", h.Total)
	}
	h2 := NewHistogram(nil, 3)
	if h2.Total != 0 {
		t.Error("empty histogram counted something")
	}
	defer func() {
		if recover() == nil {
			t.Error("nbins=0 did not panic")
		}
	}()
	NewHistogram(nil, 0)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = (%v,%v,%v)", a, b, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-point fit did not panic")
		}
	}()
	LinearFit([]float64{1}, []float64{2})
}

func TestPowerLawFitRecoversExponent(t *testing.T) {
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 2.5 * math.Pow(xs[i], 3.2)
	}
	c, k, r2 := PowerLawFit(xs, ys)
	if math.Abs(c-2.5) > 1e-6 || math.Abs(k-3.2) > 1e-9 || r2 < 0.999999 {
		t.Errorf("power fit = (%v,%v,%v)", c, k, r2)
	}
}

func TestPowerLawFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nonpositive data did not panic")
		}
	}()
	PowerLawFit([]float64{0, 1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v, want 10", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
