package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"time"
)

// DurationSummary is the latency-distribution digest used across the
// open-system tooling: the discrete-event simulator, the live load
// generator and the dispatch service all report queue waits, device waits
// and sojourn times in this one shape, so predictions and measurements
// compare field-for-field.
type DurationSummary struct {
	N    int           `json:"n"`
	Mean time.Duration `json:"mean"`
	P50  time.Duration `json:"p50"`
	P90  time.Duration `json:"p90"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	Max  time.Duration `json:"max"`
}

// SummarizeDurations digests a sample of durations; it returns a zero
// summary for empty input. Quantiles come from the library's shared
// Quantile (linear interpolation on the sorted sample). The mean is exact:
// it accumulates in 128 bits, so a planner-scale sample (1e6+ jobs) of
// durations near MaxInt64 cannot silently wrap the way a time.Duration
// accumulator would. Max likewise comes straight from the sample — the
// float64 round trip the quantiles use can round a near-MaxInt64 value
// past the int64 range.
func SummarizeDurations(ds []time.Duration) DurationSummary {
	if len(ds) == 0 {
		return DurationSummary{}
	}
	xs := make([]float64, len(ds))
	max := ds[0]
	// 128-bit signed sum as two unsigned magnitudes (durations can be
	// negative in principle, even though the latency pipelines never emit
	// them).
	var posHi, posLo, negHi, negLo uint64
	for i, d := range ds {
		xs[i] = float64(d)
		if d > max {
			max = d
		}
		var carry uint64
		if d >= 0 {
			posLo, carry = bits.Add64(posLo, uint64(d), 0)
			posHi += carry
		} else {
			negLo, carry = bits.Add64(negLo, uint64(-d), 0)
			negHi += carry
		}
	}
	sort.Float64s(xs)
	q := func(p float64) time.Duration { return time.Duration(Quantile(xs, p)) }
	return DurationSummary{
		N:    len(ds),
		Mean: meanOfSums(posHi, posLo, negHi, negLo, uint64(len(ds))),
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		P999: q(0.999),
		Max:  max,
	}
}

// meanOfSums divides the 128-bit signed sum (positive minus negative
// magnitude) by n, truncating toward zero — the same semantics as the old
// `sum / n` on the never-overflowing inputs, and still exact when the sum
// exceeds 64 bits. The 128-by-64 division cannot overflow: each |value| <
// 2^63, so |sum| < n·2^63 and the quotient magnitude is below 2^63.
func meanOfSums(posHi, posLo, negHi, negLo, n uint64) time.Duration {
	var hi, lo uint64
	neg := false
	if posHi > negHi || (posHi == negHi && posLo >= negLo) {
		var borrow uint64
		lo, borrow = bits.Sub64(posLo, negLo, 0)
		hi, _ = bits.Sub64(posHi, negHi, borrow)
	} else {
		neg = true
		var borrow uint64
		lo, borrow = bits.Sub64(negLo, posLo, 0)
		hi, _ = bits.Sub64(negHi, posHi, borrow)
	}
	quot, _ := bits.Div64(hi, lo, n)
	if neg {
		return -time.Duration(quot)
	}
	return time.Duration(quot)
}

// String renders the digest in the fixed format the DES event-log and
// report-diffing tests byte-compare.
func (s DurationSummary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p999=%v max=%v",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
