package stats

import (
	"fmt"
	"sort"
	"time"
)

// DurationSummary is the latency-distribution digest used across the
// open-system tooling: the discrete-event simulator, the live load
// generator and the dispatch service all report queue waits, device waits
// and sojourn times in this one shape, so predictions and measurements
// compare field-for-field.
type DurationSummary struct {
	N    int           `json:"n"`
	Mean time.Duration `json:"mean"`
	P50  time.Duration `json:"p50"`
	P90  time.Duration `json:"p90"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	Max  time.Duration `json:"max"`
}

// SummarizeDurations digests a sample of durations; it returns a zero
// summary for empty input. Quantiles come from the library's shared
// Quantile (linear interpolation on the sorted sample).
func SummarizeDurations(ds []time.Duration) DurationSummary {
	if len(ds) == 0 {
		return DurationSummary{}
	}
	xs := make([]float64, len(ds))
	var sum time.Duration
	for i, d := range ds {
		xs[i] = float64(d)
		sum += d
	}
	sort.Float64s(xs)
	q := func(p float64) time.Duration { return time.Duration(Quantile(xs, p)) }
	return DurationSummary{
		N:    len(ds),
		Mean: sum / time.Duration(len(ds)),
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		P999: q(0.999),
		Max:  time.Duration(xs[len(xs)-1]),
	}
}

// String renders the digest in the fixed format the DES event-log and
// report-diffing tests byte-compare.
func (s DurationSummary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p999=%v max=%v",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
