package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSummarizeDurationsEmpty(t *testing.T) {
	s := SummarizeDurations(nil)
	if s != (DurationSummary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() != "n=0" {
		t.Errorf("empty String = %q", s.String())
	}
}

func TestSummarizeDurationsKnownSample(t *testing.T) {
	// 1..100 ms: exact order statistics are easy to state.
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	// Shuffle: the summary must not depend on input order.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })

	s := SummarizeDurations(ds)
	if s.N != 100 {
		t.Errorf("N = %d", s.N)
	}
	if want := 50500 * time.Microsecond; s.Mean != want {
		t.Errorf("Mean = %v, want %v", s.Mean, want)
	}
	if want := 50500 * time.Microsecond; s.P50 != want {
		t.Errorf("P50 = %v, want %v", s.P50, want)
	}
	if want := 90100 * time.Microsecond; s.P90 != want {
		t.Errorf("P90 = %v, want %v", s.P90, want)
	}
	if want := 99010 * time.Microsecond; s.P99 != want {
		t.Errorf("P99 = %v, want %v", s.P99, want)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if s.P999 <= s.P99 || s.P999 > s.Max {
		t.Errorf("P999 = %v out of order (p99 %v, max %v)", s.P999, s.P99, s.Max)
	}
}

func TestSummarizeDurationsSingle(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second})
	if s.Mean != time.Second || s.P50 != time.Second || s.P999 != time.Second || s.Max != time.Second {
		t.Errorf("single-sample summary = %+v", s)
	}
}

// TestSummarizeDurationsOverflow is the regression for the wrap bug: a
// time.Duration accumulator (`sum += d`) silently overflows once the sample
// total passes MaxInt64 — three ~292-year durations already do, and planner
// sweeps push N to 1e6+. The 128-bit accumulator must return the exact mean,
// and Max must come from the sample, not a float64 round trip (which rounds
// MaxInt64-ε up past the int64 range).
func TestSummarizeDurationsOverflow(t *testing.T) {
	const huge = time.Duration(math.MaxInt64)
	ds := make([]time.Duration, 1000)
	var want time.Duration // exact mean via the known closed form below
	for i := range ds {
		ds[i] = huge - time.Duration(i) // near-MaxInt64, all distinct
	}
	// sum = 1000*huge - (0+..+999) => mean = huge - 499.5, truncated to huge - 500.
	want = huge - 500
	s := SummarizeDurations(ds)
	if s.Mean != want {
		t.Errorf("Mean = %d, want %d (overflow-safe accumulation)", s.Mean, want)
	}
	if s.Mean < 0 {
		t.Errorf("Mean wrapped negative: %v", s.Mean)
	}
	if s.Max != huge {
		t.Errorf("Max = %d, want %d (must not round through float64)", s.Max, huge)
	}

	// Mixed signs still agree with the naive sum where it cannot overflow.
	mixed := []time.Duration{-7, 5, -3, 10, 2}
	if got := SummarizeDurations(mixed).Mean; got != 1 { // (7)/5 truncated
		t.Errorf("mixed-sign mean = %d, want 1", got)
	}
	allNeg := []time.Duration{-10, -20, -31}
	if got := SummarizeDurations(allNeg).Mean; got != -20 { // -61/3 trunc toward zero
		t.Errorf("negative mean = %d, want -20", got)
	}
	if got := SummarizeDurations([]time.Duration{math.MinInt64, math.MinInt64}).Mean; got != math.MinInt64 {
		t.Errorf("MinInt64 mean = %d", got)
	}
}

func TestDurationSummaryJSON(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back DurationSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("JSON round trip changed summary: %+v vs %+v", back, s)
	}
}
