package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

func TestSummarizeDurationsEmpty(t *testing.T) {
	s := SummarizeDurations(nil)
	if s != (DurationSummary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() != "n=0" {
		t.Errorf("empty String = %q", s.String())
	}
}

func TestSummarizeDurationsKnownSample(t *testing.T) {
	// 1..100 ms: exact order statistics are easy to state.
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	// Shuffle: the summary must not depend on input order.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })

	s := SummarizeDurations(ds)
	if s.N != 100 {
		t.Errorf("N = %d", s.N)
	}
	if want := 50500 * time.Microsecond; s.Mean != want {
		t.Errorf("Mean = %v, want %v", s.Mean, want)
	}
	if want := 50500 * time.Microsecond; s.P50 != want {
		t.Errorf("P50 = %v, want %v", s.P50, want)
	}
	if want := 90100 * time.Microsecond; s.P90 != want {
		t.Errorf("P90 = %v, want %v", s.P90, want)
	}
	if want := 99010 * time.Microsecond; s.P99 != want {
		t.Errorf("P99 = %v, want %v", s.P99, want)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if s.P999 <= s.P99 || s.P999 > s.Max {
		t.Errorf("P999 = %v out of order (p99 %v, max %v)", s.P999, s.P99, s.Max)
	}
}

func TestSummarizeDurationsSingle(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second})
	if s.Mean != time.Second || s.P50 != time.Second || s.P999 != time.Second || s.Max != time.Second {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestDurationSummaryJSON(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back DurationSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("JSON round trip changed summary: %+v vs %+v", back, s)
	}
}
