package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty inputs should return 0")
	}
	xs := []float64{3, 1, 2}
	if got := Mean(xs); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median(xs); got != 2 {
		t.Fatalf("Median = %v", got)
	}
	// Median must not sort the caller's slice.
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
	if got := Median([]float64{4, 1, 3, 2}); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("even Median = %v", got)
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Normal(10, 1): a 95% CI for the mean from n=200 should almost surely
	// contain 10 and be a tight, ordered interval.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapCI(xs, Mean, 500, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] misses true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("CI [%v, %v] implausibly wide for n=200", lo, hi)
	}
}

func TestBootstrapCIShrinksWithSampleSize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 5 + rng.NormFloat64()
		}
		return xs
	}
	lo1, hi1, err := BootstrapCI(mk(20), Mean, 400, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(mk(2000), Mean, 400, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Fatalf("CI did not shrink: n=20 width %v, n=2000 width %v", hi1-lo1, hi2-lo2)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := []float64{1, 2, 3}
	if _, _, err := BootstrapCI(nil, Mean, 10, 0.9, rng); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := BootstrapCI(xs, nil, 10, 0.9, rng); err == nil {
		t.Fatal("nil stat accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 1, 0.9, rng); err == nil {
		t.Fatal("1 resample accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 10, 1, rng); err == nil {
		t.Fatal("conf=1 accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 10, 0.9, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestTheilSenExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	a, b, err := TheilSen(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit (%v, %v), want (3, 2)", a, b)
	}
}

func TestTheilSenRobustToOutlier(t *testing.T) {
	// One wild outlier: least squares bends, Theil–Sen should not.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 0.5*x
	}
	ys[4] = 1000
	_, bTS, err := TheilSen(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bTS-0.5) > 0.05 {
		t.Fatalf("Theil–Sen slope %v pulled by outlier, want ≈0.5", bTS)
	}
	_, bLS, _ := LinearFit(xs, ys)
	if math.Abs(bLS-0.5) < math.Abs(bTS-0.5) {
		t.Fatalf("least squares (%v) beat Theil–Sen (%v) on outlier data", bLS, bTS)
	}
}

func TestTheilSenValidation(t *testing.T) {
	if _, _, err := TheilSen([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := TheilSen([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, err := TheilSen([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
}

func TestECDFBasics(t *testing.T) {
	F, err := ECDF([]float64{1, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := F(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if _, err := ECDF(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestQuickECDFMonotoneAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		F, err := ECDF(xs)
		if err != nil {
			return false
		}
		prev := 0.0
		for x := -40.0; x <= 40; x += 0.5 {
			v := F(x)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return F(math.Inf(1)) == 1 && F(math.Inf(-1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Theil–Sen recovers exact affine relationships regardless of
// slope sign and x spacing.
func TestQuickTheilSenExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		a := rng.NormFloat64() * 5
		b := rng.NormFloat64() * 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		used := map[float64]bool{}
		for i := range xs {
			x := float64(rng.Intn(1000))
			for used[x] {
				x = float64(rng.Intn(1000))
			}
			used[x] = true
			xs[i] = x
			ys[i] = a + b*x
		}
		ga, gb, err := TheilSen(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
