// Package arch models the three split-execution architectures of the
// paper's Fig. 1 and compares their batch throughput:
//
//	(a) asymmetric multi-processor — one host drives one QPU over a LAN;
//	(b) shared-resource — H hosts contend for a single QPU;
//	(c) dedicated — every node carries its own QPU on a local link.
//
// The paper restricts its analysis to (a); this package supplies the
// comparison it cites (Britt & Humble, "High-performance computing with
// quantum processing units") with two consistent accounting paths: a
// closed-form makespan model and a discrete-event simulation that validates
// it. Per-job phase times come from the same stage models as the rest of
// the library.
package arch

import (
	"fmt"
	"time"
)

// Kind enumerates the Fig. 1 architectures.
type Kind int

// Architectures of Fig. 1.
const (
	// AsymmetricMultiprocessor is Fig. 1(a): one host, one QPU, LAN link.
	AsymmetricMultiprocessor Kind = iota
	// SharedResource is Fig. 1(b): many hosts sharing one QPU.
	SharedResource
	// DedicatedPerNode is Fig. 1(c): a QPU on every node.
	DedicatedPerNode
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case AsymmetricMultiprocessor:
		return "asymmetric multi-processor (Fig. 1a)"
	case SharedResource:
		return "shared-resource (Fig. 1b)"
	case DedicatedPerNode:
		return "dedicated QPU per node (Fig. 1c)"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// JobProfile is the per-job phase cost vector of one split-execution solve.
type JobProfile struct {
	// Classical pre-processing on the host (stage 1 minus programming).
	PreProcess time.Duration
	// Network is the one-way transfer time per QPU interaction (charged
	// once for the request, once for the response); zero for
	// DedicatedPerNode-style local links is allowed.
	Network time.Duration
	// QPUService is the serialized device occupancy per job: programming +
	// annealing + readout.
	QPUService time.Duration
	// PostProcess is stage 3 on the host.
	PostProcess time.Duration
}

// HostWork returns the per-job host occupancy (parallelizable part).
func (p JobProfile) HostWork() time.Duration { return p.PreProcess + p.PostProcess }

// Total returns the unqueued end-to-end latency of one job (network charged
// in both directions).
func (p JobProfile) Total() time.Duration {
	return p.PreProcess + 2*p.Network + p.QPUService + p.PostProcess
}

// System describes a deployment to evaluate.
type System struct {
	Kind  Kind
	Hosts int // parallel hosts (a: 1; b,c: H)
}

// Validate checks structural consistency.
func (s System) Validate() error {
	if s.Hosts < 1 {
		return fmt.Errorf("arch: %v needs >= 1 host, got %d", s.Kind, s.Hosts)
	}
	if s.Kind == AsymmetricMultiprocessor && s.Hosts != 1 {
		return fmt.Errorf("arch: Fig. 1(a) has exactly one host, got %d", s.Hosts)
	}
	return nil
}

// qpus returns the number of QPU service tokens in the system.
func (s System) qpus() int {
	if s.Kind == DedicatedPerNode {
		return s.Hosts
	}
	return 1
}

// Makespan returns the closed-form completion time for jobs identical jobs
// under the architecture: hosts pipeline their classical work while QPU
// service serializes on the available devices. The bound is
//
//	max( ceil(J/H)·hostWork+net ,  ceil(J/Q)·service )  + remainder terms
//
// computed exactly for the deterministic case by simulating the pipeline
// arithmetic (no stochastic queueing: all jobs are identical, as in the
// paper's homogeneous workloads).
func Makespan(sys System, p JobProfile, jobs int) (time.Duration, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if jobs < 0 {
		return 0, fmt.Errorf("arch: negative job count %d", jobs)
	}
	if jobs == 0 {
		return 0, nil
	}
	// The deterministic pipeline is exactly reproduced by the DES with
	// zero-variance service times; using it as the single source of truth
	// keeps the closed form honest.
	return Simulate(sys, p, jobs)
}

// event-driven simulation ----------------------------------------------------

// Simulate runs a discrete-event simulation of jobs identical jobs flowing
// through the system: each host executes pre-process → (queue for a QPU:
// network + service) → post-process per job, drawing the next job from a
// shared backlog. It returns the completion time of the last job.
func Simulate(sys System, p JobProfile, jobs int) (time.Duration, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if jobs < 0 {
		return 0, fmt.Errorf("arch: negative job count %d", jobs)
	}
	if jobs == 0 {
		return 0, nil
	}
	if p.PreProcess < 0 || p.Network < 0 || p.QPUService < 0 || p.PostProcess < 0 {
		return 0, fmt.Errorf("arch: negative phase time in %+v", p)
	}

	hostFree := make([]time.Duration, sys.Hosts)
	qpuFree := make([]time.Duration, sys.qpus())
	var makespan time.Duration

	for job := 0; job < jobs; job++ {
		// Next job goes to the earliest-available host.
		h := argminDur(hostFree)
		t := hostFree[h]
		t += p.PreProcess

		// Acquire a QPU (dedicated systems use the host's own device).
		var q int
		if sys.Kind == DedicatedPerNode {
			q = h
		} else {
			q = argminDur(qpuFree)
		}
		start := maxDur(t+p.Network, qpuFree[q]) // request travels, then waits
		done := start + p.QPUService
		qpuFree[q] = done
		t = done + p.Network // response travels back

		t += p.PostProcess
		hostFree[h] = t
		if t > makespan {
			makespan = t
		}
	}
	return makespan, nil
}

// Throughput returns jobs/second at the makespan for the batch size.
func Throughput(sys System, p JobProfile, jobs int) (float64, error) {
	ms, err := Makespan(sys, p, jobs)
	if err != nil {
		return 0, err
	}
	if ms == 0 {
		return 0, nil
	}
	return float64(jobs) / ms.Seconds(), nil
}

// Comparison is one row of the architecture comparison table.
type Comparison struct {
	System     System
	Makespan   time.Duration
	Throughput float64 // jobs per second
	Speedup    float64 // vs Fig. 1(a)
}

// Compare evaluates all three architectures on the same job profile and
// batch, with H hosts for (b) and (c), reporting speedup relative to (a).
func Compare(p JobProfile, jobs, hosts int) ([]Comparison, error) {
	systems := []System{
		{Kind: AsymmetricMultiprocessor, Hosts: 1},
		{Kind: SharedResource, Hosts: hosts},
		{Kind: DedicatedPerNode, Hosts: hosts},
	}
	out := make([]Comparison, 0, len(systems))
	var base time.Duration
	for i, sys := range systems {
		ms, err := Makespan(sys, p, jobs)
		if err != nil {
			return nil, err
		}
		tp, err := Throughput(sys, p, jobs)
		if err != nil {
			return nil, err
		}
		c := Comparison{System: sys, Makespan: ms, Throughput: tp}
		if i == 0 {
			base = ms
		}
		if ms > 0 {
			c.Speedup = float64(base) / float64(ms)
		}
		out = append(out, c)
	}
	return out, nil
}

func argminDur(a []time.Duration) int {
	best := 0
	for i, v := range a {
		if v < a[best] {
			best = i
		}
	}
	return best
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
