package arch

import (
	"testing"
	"time"
)

func profile() JobProfile {
	return JobProfile{
		PreProcess:  400 * time.Millisecond, // stage-1 class: embedding etc.
		Network:     1 * time.Millisecond,
		QPUService:  320 * time.Millisecond, // programming + anneals
		PostProcess: 1 * time.Millisecond,
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{AsymmetricMultiprocessor, SharedResource, DedicatedPerNode} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind unprintable")
	}
}

func TestValidate(t *testing.T) {
	if err := (System{Kind: AsymmetricMultiprocessor, Hosts: 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (System{Kind: AsymmetricMultiprocessor, Hosts: 2}).Validate(); err == nil {
		t.Error("Fig 1a with 2 hosts accepted")
	}
	if err := (System{Kind: SharedResource, Hosts: 0}).Validate(); err == nil {
		t.Error("0 hosts accepted")
	}
}

func TestSingleJobLatencyIdentical(t *testing.T) {
	// One job: all architectures complete in the unqueued total.
	p := profile()
	want := p.Total()
	for _, sys := range []System{
		{Kind: AsymmetricMultiprocessor, Hosts: 1},
		{Kind: SharedResource, Hosts: 4},
		{Kind: DedicatedPerNode, Hosts: 4},
	} {
		ms, err := Makespan(sys, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ms != want {
			t.Errorf("%v: makespan %v, want %v", sys.Kind, ms, want)
		}
	}
}

func TestSerialBaselineScalesLinearly(t *testing.T) {
	p := profile()
	sys := System{Kind: AsymmetricMultiprocessor, Hosts: 1}
	one, _ := Makespan(sys, p, 1)
	ten, err := Makespan(sys, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ten != 10*one {
		t.Errorf("serial 10 jobs = %v, want %v", ten, 10*one)
	}
}

func TestDedicatedScalesWithHosts(t *testing.T) {
	p := profile()
	jobs := 16
	t4, _ := Makespan(System{Kind: DedicatedPerNode, Hosts: 4}, p, jobs)
	t8, _ := Makespan(System{Kind: DedicatedPerNode, Hosts: 8}, p, jobs)
	t16, _ := Makespan(System{Kind: DedicatedPerNode, Hosts: 16}, p, jobs)
	if !(t16 < t8 && t8 < t4) {
		t.Errorf("dedicated not scaling: %v %v %v", t4, t8, t16)
	}
	// With hosts == jobs, everything runs in one wave.
	if t16 != p.Total() {
		t.Errorf("one-wave makespan = %v, want %v", t16, p.Total())
	}
}

func TestSharedResourceBoundedByQPUSerialization(t *testing.T) {
	p := profile()
	jobs := 12
	// Plenty of hosts: the single QPU is the bottleneck. The last job
	// cannot finish before jobs×service plus its own pre/net/post.
	ms, err := Makespan(System{Kind: SharedResource, Hosts: 12}, p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	lower := time.Duration(jobs) * p.QPUService
	if ms < lower {
		t.Errorf("shared makespan %v below QPU serialization bound %v", ms, lower)
	}
	// And dedicated beats shared at equal host count.
	ded, _ := Makespan(System{Kind: DedicatedPerNode, Hosts: 12}, p, jobs)
	if ded >= ms {
		t.Errorf("dedicated (%v) not faster than shared (%v)", ded, ms)
	}
}

func TestSharedBeatsSerialWhenHostWorkDominates(t *testing.T) {
	// When classical pre-processing dominates (the paper's regime!),
	// sharing one QPU among H hosts still helps: the CPU work parallelizes.
	p := JobProfile{
		PreProcess:  2 * time.Second, // embedding-dominated
		Network:     time.Millisecond,
		QPUService:  10 * time.Millisecond,
		PostProcess: time.Millisecond,
	}
	jobs := 8
	serial, _ := Makespan(System{Kind: AsymmetricMultiprocessor, Hosts: 1}, p, jobs)
	shared, err := Makespan(System{Kind: SharedResource, Hosts: 8}, p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(serial)/float64(shared) < 4 {
		t.Errorf("shared speedup only %.2fx (serial %v, shared %v)",
			float64(serial)/float64(shared), serial, shared)
	}
}

func TestCompareTable(t *testing.T) {
	rows, err := Compare(profile(), 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v", rows[0].Speedup)
	}
	if rows[2].Speedup <= rows[1].Speedup {
		t.Errorf("dedicated (%v) should beat shared (%v)", rows[2].Speedup, rows[1].Speedup)
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("%v: throughput %v", r.System.Kind, r.Throughput)
		}
	}
}

func TestZeroJobs(t *testing.T) {
	ms, err := Makespan(System{Kind: SharedResource, Hosts: 2}, profile(), 0)
	if err != nil || ms != 0 {
		t.Errorf("zero jobs: %v %v", ms, err)
	}
	tp, err := Throughput(System{Kind: SharedResource, Hosts: 2}, profile(), 0)
	if err != nil || tp != 0 {
		t.Errorf("zero throughput: %v %v", tp, err)
	}
}

func TestNegativeInputsRejected(t *testing.T) {
	if _, err := Makespan(System{Kind: SharedResource, Hosts: 2}, profile(), -1); err == nil {
		t.Error("negative jobs accepted")
	}
	bad := profile()
	bad.Network = -time.Second
	if _, err := Simulate(System{Kind: SharedResource, Hosts: 2}, bad, 1); err == nil {
		t.Error("negative phase accepted")
	}
}

// Work conservation: makespan can never be shorter than total QPU work
// divided by device count, nor shorter than total host work divided by
// host count.
func TestWorkConservationBounds(t *testing.T) {
	p := profile()
	for _, sys := range []System{
		{Kind: SharedResource, Hosts: 3},
		{Kind: DedicatedPerNode, Hosts: 3},
	} {
		for _, jobs := range []int{1, 5, 9, 20} {
			ms, err := Simulate(sys, p, jobs)
			if err != nil {
				t.Fatal(err)
			}
			qpuBound := time.Duration(jobs) * p.QPUService / time.Duration(sys.qpus())
			hostBound := time.Duration(jobs) * p.HostWork() / time.Duration(sys.Hosts)
			if ms < qpuBound || ms < hostBound {
				t.Errorf("%v jobs=%d: makespan %v below bounds (qpu %v, host %v)",
					sys.Kind, jobs, ms, qpuBound, hostBound)
			}
		}
	}
}
