package des

import (
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/workload"
)

// SojournBands exports the result's per-class sojourn predictions in the
// reusable form obs.DriftAlarm consumes: the DES mean (and p99 for context)
// per class, wrapped in the scenario's declared acceptance ratios. Classes
// the simulation never completed a job for are skipped — there is no
// prediction to drift from. Single-class scenarios carry no per-class
// breakdown (the simulator only splits ClassSojourn for mixes of two or
// more), so the aggregate digest stands in as class 0 — for one class it
// is the class digest. This is the bridge of the predicted→measured loop:
// simulate the scenario once, arm the live deployment's alarm with the
// bands, and /healthz flips when measured sojourns leave the envelope.
func (r *Result) SojournBands(band workload.Band) []obs.SojournBand {
	if len(r.ClassSojourn) == 0 {
		if r.Sojourn.N == 0 {
			return nil
		}
		return []obs.SojournBand{{
			Class:     0,
			Predicted: r.Sojourn.Mean,
			P99:       r.Sojourn.P99,
			Lo:        band.Lo,
			Hi:        band.Hi,
		}}
	}
	out := make([]obs.SojournBand, 0, len(r.ClassSojourn))
	for c, s := range r.ClassSojourn {
		if s.N == 0 {
			continue
		}
		out = append(out, obs.SojournBand{
			Class:     c,
			Predicted: s.Mean,
			P99:       s.P99,
			Lo:        band.Lo,
			Hi:        band.Hi,
		})
	}
	return out
}
