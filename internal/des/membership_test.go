package des

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/workload"
)

// shardEventsAfter parses an event log and returns, per shard, the count of
// job events (arrive/start/done/…) dispatched to that shard at or after the
// cutoff; shardEventsBefore the same strictly before it. Membership and
// fault lines (join/drain/sdown/sup, device down/up) are ignored.
func shardJobEvents(t *testing.T, log string, cutoff time.Duration) (before, after map[int]int) {
	t.Helper()
	before, after = map[int]int{}, map[int]int{}
	for _, line := range strings.Split(log, "\n") {
		if line == "" || !strings.Contains(line, " job=") {
			continue
		}
		f := strings.Fields(line)
		at, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			t.Fatalf("unparseable event time in %q", line)
		}
		shard := -1
		for _, tok := range f {
			if v, ok := strings.CutPrefix(tok, "shard="); ok {
				shard, _ = strconv.Atoi(v)
			}
		}
		if shard < 0 {
			continue // pre-routing arrival
		}
		if time.Duration(at) < cutoff {
			before[shard]++
		} else {
			after[shard]++
		}
	}
	return before, after
}

// TestClusterJoinMovesOnlyPredictedKeys is the DES half of the elastic
// acceptance: a scheduled join shifts exactly the classes the ring diff
// predicts onto the joiner — nothing routes there before the join event,
// unmoved classes never leave their owner, and the ledger stays clean (a
// join is graceful: no aborts, no retries, no failures).
func TestClusterJoinMovesOnlyPredictedKeys(t *testing.T) {
	const joinAt = 100 * time.Millisecond
	sc := clusterScenario(2, 2000, 11)
	sc.Cluster.Events = []workload.MemberEvent{
		{Kind: workload.JoinEvent, Shard: 2, At: workload.Duration(joinAt)},
	}

	var log bytes.Buffer
	r, err := Simulate(sc, Options{EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 2000 || r.Failed != 0 || r.Retries != 0 {
		t.Fatalf("join is graceful: want 2000 clean completions, got jobs=%d failed=%d retries=%d",
			r.Jobs, r.Failed, r.Retries)
	}
	if len(r.Shards) != 3 {
		t.Fatalf("result carries %d shard entries, want 3 (2 initial + joiner)", len(r.Shards))
	}
	if !strings.Contains(log.String(), " join shard=2") {
		t.Fatal("event log missing the join")
	}

	before, after := shardJobEvents(t, log.String(), joinAt)
	if before[2] != 0 {
		t.Errorf("%d job events on the joiner before its join", before[2])
	}
	if after[2] == 0 {
		t.Error("joiner took no traffic after joining")
	}

	// Per-class placement must match the ring diff exactly.
	old := sc.ClusterRing()
	grown := old.With(workload.ShardName(2))
	moved := ring.Moved(old, grown)
	for class := range sc.Mix {
		key := workload.ClassKey(class)
		owner := old.Owner(key)
		predicted := ring.Covers(moved, ring.Hash(key))
		for x, st := range r.Shards {
			n := 0
			if st.ClassSojourn != nil {
				n = st.ClassSojourn[class].N
			}
			switch {
			case x == owner:
				if n == 0 {
					t.Errorf("class %d absent from its pre-join owner %d", class, owner)
				}
			case x == 2 && predicted:
				if n == 0 {
					t.Errorf("class %d predicted to move but never completed on the joiner", class)
				}
			default:
				if n != 0 {
					t.Errorf("class %d completed %d jobs on shard %d against the ring prediction", class, n, x)
				}
			}
		}
	}
}

// TestClusterDrainGraceful: a planned drain re-routes the victim's queued
// work and future arrivals to the survivors without consuming a single
// retry — the explicit contrast with shardDown's abort semantics — and no
// job starts on the drained shard after the event.
func TestClusterDrainGraceful(t *testing.T) {
	const drainAt = 100 * time.Millisecond
	const victim = 2 // owner of every class key at 3 members
	sc := clusterScenario(3, 2000, 17)
	sc.Cluster.Events = []workload.MemberEvent{
		{Kind: workload.DrainEvent, Shard: victim, At: workload.Duration(drainAt)},
	}

	var log bytes.Buffer
	r, err := Simulate(sc, Options{EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 2000 || r.Failed != 0 || r.Retries != 0 {
		t.Fatalf("drain is graceful: want 2000 clean completions, got jobs=%d failed=%d retries=%d",
			r.Jobs, r.Failed, r.Retries)
	}
	if strings.Contains(log.String(), " abort ") {
		t.Error("a planned drain aborted in-flight work")
	}
	if !strings.Contains(log.String(), fmt.Sprintf(" drain shard=%d", victim)) {
		t.Fatal("event log missing the drain")
	}
	// The drained shard carried work before the event and only winds down
	// after: in-flight jobs may still release/complete, but nothing new
	// starts there.
	before, _ := shardJobEvents(t, log.String(), drainAt)
	if before[victim] == 0 {
		t.Fatalf("shard %d idle before its drain — the scenario never loaded it", victim)
	}
	for _, line := range strings.Split(log.String(), "\n") {
		if !strings.Contains(line, " start job=") || !strings.Contains(line, fmt.Sprintf("shard=%d", victim)) {
			continue
		}
		at, _ := strconv.ParseInt(strings.Fields(line)[0], 10, 64)
		if time.Duration(at) >= drainAt {
			t.Fatalf("job started on drained shard after the event: %q", line)
		}
	}
	// Survivors inherit the victim's classes per the ring diff.
	full := sc.ClusterRing()
	rest := full.Without(victim)
	moved := ring.Moved(full, rest)
	for class := range sc.Mix {
		key := workload.ClassKey(class)
		if !ring.Covers(moved, ring.Hash(key)) {
			continue
		}
		name := rest.Lookup(key)
		idx := -1
		for x := 0; x < 3; x++ {
			if x != victim && workload.ShardName(x) == name {
				idx = x
			}
		}
		if idx < 0 {
			t.Fatalf("class %d post-drain owner %q is not a survivor", class, name)
		}
		st := r.Shards[idx]
		if st.ClassSojourn == nil || st.ClassSojourn[class].N == 0 {
			t.Errorf("class %d never completed on its post-drain owner %d", class, idx)
		}
	}
}

// TestClusterMembershipDeterministic extends the byte-identical event-log
// pin to elastic membership: a schedule with a join and a drain replays the
// same log at any GOMAXPROCS.
func TestClusterMembershipDeterministic(t *testing.T) {
	sc := clusterScenario(2, 1500, 23)
	sc.Cluster.StealThreshold = 4
	sc.Cluster.Events = []workload.MemberEvent{
		{Kind: workload.JoinEvent, Shard: 2, At: workload.Duration(80 * time.Millisecond)},
		{Kind: workload.DrainEvent, Shard: 0, At: workload.Duration(200 * time.Millisecond)},
	}

	type run struct {
		log     string
		summary string
	}
	simulate := func() run {
		var buf bytes.Buffer
		r, err := Simulate(sc, Options{EventLog: &buf})
		if err != nil {
			t.Errorf("Simulate: %v", err)
			return run{}
		}
		return run{log: buf.String(), summary: r.String()}
	}

	prev := runtime.GOMAXPROCS(1)
	baseline := simulate()
	runtime.GOMAXPROCS(prev)
	if !strings.Contains(baseline.log, " join shard=2") || !strings.Contains(baseline.log, " drain shard=0") {
		t.Fatal("baseline log missing the membership schedule")
	}

	var wg sync.WaitGroup
	runs := make([]run, 4)
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = simulate()
		}(i)
	}
	wg.Wait()
	for i, r := range runs {
		if r.summary != baseline.summary {
			t.Errorf("run %d summary diverged:\n%s\nbaseline:\n%s", i, r.summary, baseline.summary)
		}
		if r.log != baseline.log {
			t.Errorf("run %d event log diverged from baseline (len %d vs %d)", i, len(r.log), len(baseline.log))
		}
	}
}
