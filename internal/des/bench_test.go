package des

import (
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

// BenchmarkDES simulates one million open-system arrivals through the
// shared-resource architecture — the scale the live service would need
// hours of wall clock for runs in milliseconds of virtual time. CI's
// bench-smoke step executes one iteration, pinning both compilation and
// the no-sleeping property (a single wall-clock sleep would blow the
// step's budget immediately).
func BenchmarkDES(b *testing.B) {
	sc := &workload.Scenario{
		Name:    "bench-1e6",
		Seed:    1,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 4000},
		Mix: []workload.JobClass{
			{Name: "small", Weight: 3, Profile: workload.Profile{
				PreProcess: workload.Duration(500 * time.Microsecond),
				Network:    workload.Duration(10 * time.Microsecond),
				QPUService: workload.Duration(150 * time.Microsecond),
			}},
			{Name: "large", Weight: 1, Dist: workload.Exponential, Profile: workload.Profile{
				PreProcess:  workload.Duration(1500 * time.Microsecond),
				QPUService:  workload.Duration(400 * time.Microsecond),
				PostProcess: workload.Duration(200 * time.Microsecond),
			}},
		},
		System:  workload.SystemSpec{Kind: "shared", Hosts: 8},
		Horizon: workload.Horizon{Jobs: 1_000_000},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Simulate(sc, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Jobs != 1_000_000 {
			b.Fatalf("completed %d jobs", r.Jobs)
		}
	}
}
