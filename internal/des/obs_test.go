package des

import (
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

func bandScenario(t *testing.T, mix string) *workload.Scenario {
	t.Helper()
	sc, err := workload.Decode([]byte(`{
	  "name": "bands", "seed": 7,
	  "arrival": {"kind": "poisson", "rate": 200},
	  "mix": [` + mix + `],
	  "system": {"kind": "shared", "hosts": 2},
	  "horizon": {"jobs": 200}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSojournBandsSingleClass: a one-class scenario has no per-class
// breakdown in the DES result, so the aggregate digest must stand in as
// class 0 — otherwise the drift alarm would silently never arm for the
// most common scenario shape.
func TestSojournBandsSingleClass(t *testing.T) {
	sc := bandScenario(t, `{"name": "only", "weight": 1,
		"profile": {"preProcess": "300µs", "qpuService": "200µs"}}`)
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bands := r.SojournBands(workload.Band{Lo: 0.5, Hi: 2})
	if len(bands) != 1 {
		t.Fatalf("got %d bands, want 1 (aggregate fallback)", len(bands))
	}
	b := bands[0]
	if b.Class != 0 || b.Predicted != r.Sojourn.Mean || b.P99 != r.Sojourn.P99 {
		t.Errorf("band %+v does not mirror the aggregate digest %v/%v", b, r.Sojourn.Mean, r.Sojourn.P99)
	}
	if b.Lo != 0.5 || b.Hi != 2 {
		t.Errorf("band ratios %v/%v, want 0.5/2", b.Lo, b.Hi)
	}
	if b.Predicted <= 0 {
		t.Errorf("degenerate predicted sojourn %v", b.Predicted)
	}
}

// TestSojournBandsPerClass: a multi-class mix exports one band per class
// that completed jobs, carrying that class's own digest.
func TestSojournBandsPerClass(t *testing.T) {
	sc := bandScenario(t, `{"name": "fast", "weight": 3,
		"profile": {"preProcess": "200µs", "qpuService": "100µs"}},
		{"name": "slow", "weight": 1,
		"profile": {"preProcess": "2ms", "qpuService": "1ms"}}`)
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bands := r.SojournBands(workload.Band{Lo: 0.25, Hi: 4})
	if len(bands) != 2 {
		t.Fatalf("got %d bands, want one per class", len(bands))
	}
	byClass := map[int]time.Duration{}
	for _, b := range bands {
		byClass[b.Class] = b.Predicted
	}
	if len(byClass) != 2 || byClass[0] <= 0 || byClass[1] <= 0 {
		t.Fatalf("bands %+v do not cover both classes", bands)
	}
	// The slow class must predict a visibly larger sojourn than the fast
	// one — the per-class split is the point of the breakdown.
	if byClass[1] <= byClass[0] {
		t.Errorf("slow class predicted %v <= fast class %v", byClass[1], byClass[0])
	}
}
