package des

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/workload"
)

// policyScenario is a transiently overloaded two-class workload: arrivals
// outpace the hosts, so a backlog builds and the queue discipline decides
// who waits. Class 0 ("fast", priority 8, weight 4) is short; class 1
// ("slow", priority 0, weight 1) is 5x longer.
func policyScenario(policy sched.Policy, jobs int) *workload.Scenario {
	return &workload.Scenario{
		Name:    fmt.Sprintf("policy-%s", sched.Normalize(policy)),
		Seed:    23,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 1200},
		Mix: []workload.JobClass{
			{
				Name: "fast", Weight: 4, Priority: 8,
				Profile: workload.Profile{
					PreProcess: workload.Duration(600 * time.Microsecond),
					QPUService: workload.Duration(200 * time.Microsecond),
				},
			},
			{
				Name: "slow", Weight: 1, Priority: 0,
				Profile: workload.Profile{
					PreProcess:  workload.Duration(3 * time.Millisecond),
					QPUService:  workload.Duration(800 * time.Microsecond),
					PostProcess: workload.Duration(200 * time.Microsecond),
				},
			},
		},
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: 1},
		Horizon: workload.Horizon{Jobs: jobs},
		Policy:  policy,
	}
}

func classMeans(t *testing.T, policy sched.Policy) (fast, slow, all time.Duration) {
	t.Helper()
	r, err := Simulate(policyScenario(policy, 4000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ClassSojourn) != 2 {
		t.Fatalf("policy %s: no per-class sojourn breakdown", policy)
	}
	return r.ClassSojourn[0].Mean, r.ClassSojourn[1].Mean, r.Sojourn.Mean
}

// TestPolicyBehavior pins what each discipline is *for*: against the FIFO
// baseline on an overloaded backlog, priority must protect the
// high-priority class, SJF must cut the mean sojourn (and favor the short
// class), and fair share must shift latency toward the low-weight class.
func TestPolicyBehavior(t *testing.T) {
	fifoFast, fifoSlow, fifoAll := classMeans(t, sched.FIFO)
	t.Logf("fifo: fast %v slow %v all %v", fifoFast, fifoSlow, fifoAll)

	prioFast, prioSlow, _ := classMeans(t, sched.Priority)
	t.Logf("priority: fast %v slow %v", prioFast, prioSlow)
	if float64(prioFast) > 0.5*float64(fifoFast) {
		t.Errorf("priority did not protect the high-priority class: %v vs FIFO %v", prioFast, fifoFast)
	}
	if prioSlow < fifoSlow {
		t.Errorf("priority made the low-priority class faster (%v) than FIFO (%v)?", prioSlow, fifoSlow)
	}

	sjfFast, sjfSlow, sjfAll := classMeans(t, sched.ShortestQPU)
	t.Logf("sjf: fast %v slow %v all %v", sjfFast, sjfSlow, sjfAll)
	if sjfAll >= fifoAll {
		t.Errorf("SJF mean sojourn %v did not beat FIFO %v on a backlogged mix", sjfAll, fifoAll)
	}
	if sjfFast >= fifoFast {
		t.Errorf("SJF did not favor the short class: %v vs FIFO %v", sjfFast, fifoFast)
	}

	fairFast, fairSlow, _ := classMeans(t, sched.FairShare)
	t.Logf("fair: fast %v slow %v", fairFast, fairSlow)
	// Class 0 carries 4x the weight: its latency must improve relative to
	// FIFO while the light class pays.
	if fairFast >= fifoFast {
		t.Errorf("fair share did not favor the weighted class: %v vs FIFO %v", fairFast, fifoFast)
	}
	if fairSlow <= fifoSlow {
		t.Errorf("fair share gave the light class a free ride: %v vs FIFO %v", fairSlow, fifoSlow)
	}
}

// TestPolicyConservation: policies reorder service, they never create or
// destroy work — job count, total QPU busy time and throughput-defining end
// time stay within the same regime across all four.
func TestPolicyConservation(t *testing.T) {
	var ends []time.Duration
	for _, p := range sched.Policies() {
		r, err := Simulate(policyScenario(p, 3000), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Jobs != 3000 {
			t.Errorf("policy %s completed %d jobs, want 3000", p, r.Jobs)
		}
		ends = append(ends, r.End)
	}
	// A single host with no idling finishes a fixed backlog at the same
	// time under any work-conserving discipline (within the tail job).
	for i, e := range ends {
		ratio := float64(e) / float64(ends[0])
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("policy %s end %v vs FIFO %v — not work-conserving?", sched.Policies()[i], e, ends[0])
		}
	}
}

// TestPolicyDeterminismAcrossGOMAXPROCS extends the PR 4 determinism anchor
// to every policy: identical scenario + seed must produce byte-identical
// event logs and summaries at any GOMAXPROCS. Run under -race in CI.
func TestPolicyDeterminismAcrossGOMAXPROCS(t *testing.T) {
	for _, p := range sched.Policies() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			sc := policyScenario(p, 10_000)
			type run struct{ log, summary string }
			simulate := func() run {
				var buf bytes.Buffer
				r, err := Simulate(sc, Options{EventLog: &buf})
				if err != nil {
					t.Errorf("Simulate: %v", err)
					return run{}
				}
				return run{log: buf.String(), summary: r.String()}
			}
			prev := runtime.GOMAXPROCS(1)
			baseline := simulate()
			runtime.GOMAXPROCS(prev)
			if baseline.log == "" {
				t.Fatal("baseline produced no event log")
			}
			var wg sync.WaitGroup
			runs := make([]run, 3)
			for i := range runs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					runs[i] = simulate()
				}(i)
			}
			wg.Wait()
			for i, r := range runs {
				if r.summary != baseline.summary {
					t.Errorf("run %d summary diverged:\n%s\nbaseline:\n%s", i, r.summary, baseline.summary)
				}
				if r.log != baseline.log {
					t.Errorf("run %d event log diverged (len %d vs %d)", i, len(r.log), len(baseline.log))
				}
			}
		})
	}
}

// TestPolicyValidation: unknown policies are rejected at Decode/Validate,
// before any consumer runs.
func TestPolicyValidation(t *testing.T) {
	sc := policyScenario("lifo", 10)
	if _, err := Simulate(sc, Options{}); err == nil {
		t.Error("unknown policy survived Validate")
	}
	data, err := policyScenario(sched.FairShare, 10).Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := workload.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy != sched.FairShare || back.Mix[0].Priority != 8 {
		t.Errorf("policy fields lost in round trip: policy=%q priority=%d", back.Policy, back.Mix[0].Priority)
	}
}
