package des

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

// clusterScenario is a three-class workload over a federated deployment:
// shards × dedicated hosts, class-keyed consistent-hash routing.
func clusterScenario(shards, jobs int, seed int64) *workload.Scenario {
	profile := workload.Profile{
		PreProcess:  workload.Duration(400 * time.Microsecond),
		QPUService:  workload.Duration(300 * time.Microsecond),
		PostProcess: workload.Duration(100 * time.Microsecond),
	}
	return &workload.Scenario{
		Name:    "cluster",
		Seed:    seed,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 2000},
		Mix: []workload.JobClass{
			{Name: "a", Weight: 1, Profile: profile},
			{Name: "b", Weight: 1, Profile: profile},
			{Name: "c", Weight: 1, Profile: profile},
		},
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: 2},
		Horizon: workload.Horizon{Jobs: jobs},
		Cluster: &workload.ClusterSpec{Shards: shards},
	}
}

// TestClusterOfOneMatchesPlain: a declared single-shard cluster must replay
// the exact event log of the same scenario without a cluster stanza — the
// federation layer adds nothing to a cluster of one.
func TestClusterOfOneMatchesPlain(t *testing.T) {
	plain := clusterScenario(1, 500, 31)
	plain.Cluster = nil
	declared := clusterScenario(1, 500, 31)

	var logA, logB bytes.Buffer
	ra, err := Simulate(plain, Options{EventLog: &logA})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(declared, Options{EventLog: &logB})
	if err != nil {
		t.Fatal(err)
	}
	if logA.String() != logB.String() {
		t.Error("cluster-of-one event log diverged from the plain deployment")
	}
	if ra.String() != rb.String() {
		t.Errorf("cluster-of-one summary diverged:\n%s\nvs\n%s", ra, rb)
	}
}

// TestClusterHashAffinity: without stealing, every class is pinned to its
// ring owner — each class's completions land on exactly one shard, and the
// per-shard ledgers sum to the aggregate.
func TestClusterHashAffinity(t *testing.T) {
	sc := clusterScenario(4, 1200, 7)
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 1200 {
		t.Fatalf("completed %d of 1200", r.Jobs)
	}
	if len(r.Shards) != 4 {
		t.Fatalf("result carries %d shard entries, want 4", len(r.Shards))
	}
	sum := 0
	for _, st := range r.Shards {
		sum += st.Jobs
	}
	if sum != r.Jobs {
		t.Errorf("per-shard jobs sum %d != aggregate %d", sum, r.Jobs)
	}
	// Each class appears on exactly the shard the ring assigns it.
	rg := sc.ClusterRing()
	for class := range sc.Mix {
		owner := rg.Owner(workload.ClassKey(class))
		for x, st := range r.Shards {
			n := 0
			if st.ClassSojourn != nil {
				n = st.ClassSojourn[class].N
			}
			if x == owner && n == 0 {
				t.Errorf("class %d absent from its home shard %d", class, owner)
			}
			if x != owner && n != 0 {
				t.Errorf("class %d leaked onto shard %d (%d jobs) without stealing", class, x, n)
			}
		}
	}
}

// TestClusterStealingSpreadsLoad: with a tight steal threshold, a class's
// jobs overflow beyond its home shard — and the aggregate p99 must not be
// worse than the no-stealing run of the same scenario, since stealing only
// ever moves work from deeper to shallower backlogs.
func TestClusterStealingSpreadsLoad(t *testing.T) {
	pinned := clusterScenario(3, 1500, 13)
	pinned.Arrival.Rate = 5000 // saturate the home shards so backlogs form
	stealing := clusterScenario(3, 1500, 13)
	stealing.Arrival.Rate = 5000
	stealing.Cluster.StealThreshold = 2

	rp, err := Simulate(pinned, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(stealing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spread := 0
	rg := stealing.ClusterRing()
	for class := range stealing.Mix {
		owner := rg.Owner(workload.ClassKey(class))
		for x, st := range rs.Shards {
			if x != owner && st.ClassSojourn != nil && st.ClassSojourn[class].N > 0 {
				spread++
			}
		}
	}
	if spread == 0 {
		t.Error("steal threshold 2 under saturation moved no work off home shards")
	}
	if rs.Sojourn.P99 > rp.Sojourn.P99*2 {
		t.Errorf("stealing made the tail worse: p99 %v vs pinned %v", rs.Sojourn.P99, rp.Sojourn.P99)
	}
}

// shardLossScenario kills the shard owning class 0 mid-run — targeting a
// ring owner guarantees the victim is carrying work when it dies.
func shardLossScenario(jobs int, seed int64) *workload.Scenario {
	sc := clusterScenario(3, jobs, seed)
	sc.Arrival.Rate = 6000 // ~80% utilization: hosts are busy at the death instant
	sc.Cluster.StealThreshold = 8
	victim := sc.ClusterRing().Owner(workload.ClassKey(0))
	sc.Faults = &workload.FaultSpec{
		MaxRetries: 3,
		Backoff:    workload.Duration(time.Millisecond),
		Shard: &workload.ShardFault{
			Shard: victim,
			At:    workload.Duration(50 * time.Millisecond),
			For:   workload.Duration(100 * time.Millisecond),
		},
	}
	return sc
}

// TestClusterShardLossConservation is the acceptance invariant: killing a
// shard mid-run conserves the job ledger — every admitted job completes or
// fails, no in-flight job is lost — and the in-flight abort machinery
// actually fired.
func TestClusterShardLossConservation(t *testing.T) {
	var log bytes.Buffer
	sc := shardLossScenario(2000, 41)
	victim := sc.Faults.Shard.Shard
	r, err := Simulate(sc, Options{EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs+r.Failed != r.Admitted {
		t.Errorf("ledger leak: jobs %d + failed %d != admitted %d", r.Jobs, r.Failed, r.Admitted)
	}
	if r.Admitted != 2000 {
		t.Errorf("admitted %d, want the full horizon", r.Admitted)
	}
	if !strings.Contains(log.String(), fmt.Sprintf(" sdown shard=%d", victim)) {
		t.Error("event log missing the shard death")
	}
	if !strings.Contains(log.String(), fmt.Sprintf(" sup shard=%d", victim)) {
		t.Error("event log missing the shard revival")
	}
	if r.Retries == 0 {
		t.Error("shard death aborted no in-flight jobs — the fault never bit")
	}
	if !strings.Contains(log.String(), " abort job=") {
		t.Error("event log missing in-flight aborts")
	}
}

// TestClusterPermanentShardLoss: a shard that never rejoins (For == 0) must
// still conserve the ledger — ownership rebalances to the survivors for the
// rest of the run.
func TestClusterPermanentShardLoss(t *testing.T) {
	sc := shardLossScenario(1500, 43)
	sc.Faults.Shard.For = 0
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs+r.Failed != r.Admitted {
		t.Errorf("ledger leak: jobs %d + failed %d != admitted %d", r.Jobs, r.Failed, r.Admitted)
	}
	if r.Jobs == 0 {
		t.Fatal("no jobs completed after permanent shard loss")
	}
}

// TestClusterDeterministicAcrossGOMAXPROCS extends the determinism pin to
// the federated simulator: cluster event logs — routing, stealing, shard
// death and re-dispatch included — must be byte-identical at any
// GOMAXPROCS. Run under -race in CI.
func TestClusterDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := shardLossScenario(3000, 47)

	type run struct {
		log     string
		summary string
	}
	simulate := func() run {
		var buf bytes.Buffer
		r, err := Simulate(sc, Options{EventLog: &buf})
		if err != nil {
			t.Errorf("Simulate: %v", err)
			return run{}
		}
		return run{log: buf.String(), summary: r.String()}
	}

	prev := runtime.GOMAXPROCS(1)
	baseline := simulate()
	runtime.GOMAXPROCS(prev)
	if baseline.log == "" {
		t.Fatal("baseline produced no event log")
	}
	if !strings.Contains(baseline.log, " sdown shard=") {
		t.Fatal("baseline log has no shard fault — the regime never fired")
	}
	if !strings.Contains(baseline.log, " shard=2") {
		t.Fatal("baseline log never dispatched to shard 2")
	}

	var wg sync.WaitGroup
	runs := make([]run, 4)
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = simulate()
		}(i)
	}
	wg.Wait()
	for i, r := range runs {
		if r.summary != baseline.summary {
			t.Errorf("run %d summary diverged:\n%s\nbaseline:\n%s", i, r.summary, baseline.summary)
		}
		if r.log != baseline.log {
			t.Errorf("run %d event log diverged from baseline (len %d vs %d)", i, len(r.log), len(baseline.log))
		}
	}
}
