package des

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

// faultScenario is mmcScenario under a full chaos regime: device deaths,
// straggler anneals and connection drops all at once.
func faultScenario(jobs int, seed int64) *workload.Scenario {
	sc := mmcScenario(0.5, 3, jobs, seed)
	sc.Faults = &workload.FaultSpec{
		DeviceMTBF:     workload.Duration(20 * time.Millisecond),
		DeviceDowntime: workload.Duration(5 * time.Millisecond),
		StragglerProb:  0.05,
		StragglerCap:   10,
		DropProb:       0.1,
		MaxRetries:     3,
		Backoff:        workload.Duration(time.Millisecond),
	}
	return sc
}

// TestFaultConservation pins the simulator's ledger under the full chaos
// regime: every admitted job completes or fails, never both, never neither —
// and each fault class actually fired (a regime that injects nothing tests
// nothing).
func TestFaultConservation(t *testing.T) {
	var log bytes.Buffer
	sc := faultScenario(2000, 17)
	r, err := Simulate(sc, Options{EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs+r.Failed != r.Admitted {
		t.Errorf("ledger leak: jobs %d + failed %d != admitted %d", r.Jobs, r.Failed, r.Admitted)
	}
	if r.Admitted != 2000 {
		t.Errorf("admitted %d, want the full 2000-job horizon", r.Admitted)
	}
	if r.Retries == 0 {
		t.Error("no retries at 20ms MTBF over a multi-second run")
	}
	if r.Drops == 0 {
		t.Error("no drops at 10% drop probability")
	}
	if r.DeviceDown == 0 {
		t.Error("no realized device downtime")
	}
	for _, ev := range []string{" down dev=", " up dev=", " drop job=", " abort job="} {
		if !strings.Contains(log.String(), ev) {
			t.Errorf("event log missing %q events", ev)
		}
	}
}

// TestFaultDeterministicAcrossGOMAXPROCS extends the PR 4 determinism pin to
// the fault regime: the event log — now including down/up/drop/abort/fail
// events — must be byte-identical at any GOMAXPROCS. Run under -race in CI.
func TestFaultDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := faultScenario(5000, 23)

	type run struct {
		log     string
		summary string
	}
	simulate := func() run {
		var buf bytes.Buffer
		r, err := Simulate(sc, Options{EventLog: &buf})
		if err != nil {
			t.Errorf("Simulate: %v", err)
			return run{}
		}
		return run{log: buf.String(), summary: r.String()}
	}

	prev := runtime.GOMAXPROCS(1)
	baseline := simulate()
	runtime.GOMAXPROCS(prev)
	if baseline.log == "" {
		t.Fatal("baseline produced no event log")
	}
	if !strings.Contains(baseline.log, " down dev=") {
		t.Fatal("baseline log has no fault events — the regime never fired")
	}

	var wg sync.WaitGroup
	runs := make([]run, 4)
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = simulate()
		}(i)
	}
	wg.Wait()
	for i, r := range runs {
		if r.summary != baseline.summary {
			t.Errorf("run %d summary diverged:\n%s\nbaseline:\n%s", i, r.summary, baseline.summary)
		}
		if r.log != baseline.log {
			t.Errorf("run %d event log diverged from baseline (len %d vs %d)", i, len(r.log), len(baseline.log))
		}
	}
}

// TestDropLedgerMatchesPlans: the simulator's realized drop/failure counts
// must equal the sums of the per-job deterministic drop plans — the exact
// schedule a live replay realizes from the same seed.
func TestDropLedgerMatchesPlans(t *testing.T) {
	sc := mmcScenario(0.3, 2, 500, 31)
	sc.Faults = &workload.FaultSpec{DropProb: 0.3, MaxRetries: 2, Backoff: workload.Duration(time.Millisecond)}
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantDrops, wantFatal := 0, 0
	for i := 0; i < r.Admitted; i++ {
		p := sc.DropPlanFor(i)
		wantDrops += p.Drops
		if p.Fatal {
			wantFatal++
		}
	}
	if r.Drops != wantDrops {
		t.Errorf("drops %d != %d planned", r.Drops, wantDrops)
	}
	if r.Failed != wantFatal {
		t.Errorf("failed %d != %d fatal plans (no device faults in this scenario)", r.Failed, wantFatal)
	}
	if r.Jobs+r.Failed != r.Admitted {
		t.Errorf("ledger leak: %d + %d != %d", r.Jobs, r.Failed, r.Admitted)
	}
}

// TestNoFaultRegimeUntouched: a scenario without a fault spec reports zero
// fault counters and emits no fault events — the historical no-fault event
// stream (pinned byte-for-byte by TestTraceHandChecked) is preserved.
func TestNoFaultRegimeUntouched(t *testing.T) {
	var log bytes.Buffer
	r, err := Simulate(mmcScenario(0.5, 2, 300, 11), Options{EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != 0 || r.Retries != 0 || r.Drops != 0 || r.DeviceDown != 0 {
		t.Errorf("fault counters nonzero without a fault regime: %+v", r)
	}
	for _, ev := range []string{"down", "up", "drop", "abort", "fail"} {
		if strings.Contains(log.String(), " "+ev+" ") {
			t.Errorf("no-fault log contains %q events", ev)
		}
	}
	if r.Jobs != r.Admitted {
		t.Errorf("jobs %d != admitted %d without faults", r.Jobs, r.Admitted)
	}
}

// TestStragglersStretchTail: enabling stragglers on an otherwise identical
// scenario must stretch the sojourn tail (p99) more than the median — the
// heavy-tail signature the straggler-tail corpus scenario bets on.
func TestStragglersStretchTail(t *testing.T) {
	base := mmcScenario(0.4, 2, 5000, 41)
	r0, err := Simulate(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	straggly := mmcScenario(0.4, 2, 5000, 41)
	straggly.Faults = &workload.FaultSpec{StragglerProb: 0.05, StragglerCap: 50}
	r1, err := Simulate(straggly, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sojourn.P99 <= r0.Sojourn.P99 {
		t.Errorf("stragglers did not stretch p99: %v vs %v", r1.Sojourn.P99, r0.Sojourn.P99)
	}
	tailGrowth := float64(r1.Sojourn.P99) / float64(r0.Sojourn.P99)
	medianGrowth := float64(r1.Sojourn.P50) / float64(r0.Sojourn.P50)
	if tailGrowth <= medianGrowth {
		t.Errorf("tail grew %.2fx but median %.2fx — stragglers should be a tail phenomenon",
			tailGrowth, medianGrowth)
	}
}

// TestDeviceFaultsDegradeGracefully: with one of three devices dying
// periodically, throughput drops but every admitted job still completes or
// fails within budget — the fleet-shrink degradation path.
func TestDeviceFaultsDegradeGracefully(t *testing.T) {
	sc := mmcScenario(0.5, 3, 1000, 53)
	sc.Faults = &workload.FaultSpec{
		DeviceMTBF:     workload.Duration(50 * time.Millisecond),
		DeviceDowntime: workload.Duration(10 * time.Millisecond),
		MaxRetries:     workload.MaxRetryLimit, // effectively unbounded: nothing may fail
	}
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != 0 {
		t.Errorf("%d jobs failed with an effectively unbounded retry budget", r.Failed)
	}
	if r.Jobs != r.Admitted {
		t.Errorf("jobs %d != admitted %d", r.Jobs, r.Admitted)
	}
	if r.Retries == 0 || r.DeviceDown == 0 {
		t.Errorf("fault regime never fired: retries=%d deviceDown=%v", r.Retries, r.DeviceDown)
	}
}
