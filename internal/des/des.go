// Package des is the open-system discrete-event simulator of the workload
// engine: it runs a workload.Scenario against any of the paper's Fig. 1
// architectures in virtual time — no wall-clock sleeping — and reports the
// response-time distributions (queue wait, QPU wait, sojourn) that the
// closed-batch makespan models of internal/arch cannot answer.
//
// The simulated discipline mirrors the live dispatch service exactly: a job
// arrives, waits in a backlog ordered by the scenario's scheduling policy
// (internal/sched: FIFO, priority, shortest-expected-QPU-first or weighted
// fair share) for a free host worker, then the host carries it end to end —
// pre-process, request network, queue for a QPU service token, serialized
// QPU service, response network, post-process — and only then takes the
// next job. Shared-resource systems have one QPU token for all hosts;
// dedicated systems give every host its own, so a held job's QPU is free by
// construction. The QPU token queue itself stays FIFO under every policy,
// matching the live fleet's channel semantics.
//
// Costs are O(events · log events) on a binary heap keyed by (time, push
// sequence), so identical scenarios replay byte-identical event logs at any
// GOMAXPROCS — millions of simulated arrivals take milliseconds, against
// the hours a live replay would need. Analytic (analytic.go) supplies the
// M/M/c cross-check for the exponential single-class case, validating the
// simulator against queueing theory.
package des

import (
	"container/heap"
	"fmt"
	"io"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/stats"
	"github.com/splitexec/splitexec/internal/workload"
)

// Options configure a simulation run.
type Options struct {
	// EventLog, when non-nil, receives one line per simulator event
	// (times in virtual nanoseconds). Identical scenario + seed produce
	// byte-identical logs — the determinism regression anchor.
	EventLog io.Writer
}

// Result aggregates one simulated scenario run.
type Result struct {
	Scenario string `json:"scenario,omitempty"`
	// Jobs is the number of completed (= admitted) jobs.
	Jobs int `json:"jobs"`
	// End is the virtual completion time of the last job; Throughput is
	// Jobs over End in jobs/second.
	End        time.Duration `json:"end"`
	Throughput float64       `json:"throughput"`

	// QueueWait is arrival→host pickup, QPUWait the wait for a service
	// token, Sojourn arrival→completion — the open-system latency triple.
	QueueWait stats.DurationSummary `json:"queueWait"`
	QPUWait   stats.DurationSummary `json:"qpuWait"`
	Sojourn   stats.DurationSummary `json:"sojourn"`

	// ClassSojourn breaks the sojourn distribution down per mix class —
	// the view that makes scheduling policies legible: priority shifts
	// latency between classes, fair share apportions it by weight.
	ClassSojourn []stats.DurationSummary `json:"classSojourn,omitempty"`

	// HostBusy and QPUBusy are utilization fractions: cumulative busy
	// time over capacity × End.
	HostBusy float64 `json:"hostBusy"`
	QPUBusy  float64 `json:"qpuBusy"`

	// Admitted counts every job the horizon admitted. Under a fault
	// regime Jobs + Failed == Admitted is the conservation invariant the
	// chaos tests pin: a job either completes or fails, never both,
	// never neither.
	Admitted int `json:"admitted,omitempty"`
	// Failed counts jobs lost to the fault regime: a fatal connection
	// drop, or a retry budget exhausted by device deaths.
	Failed int `json:"failed,omitempty"`
	// Retries counts service attempts aborted by a device death and
	// re-dispatched after the backoff.
	Retries int `json:"retries,omitempty"`
	// Drops counts submission attempts lost to wire-path connection
	// drops.
	Drops int `json:"drops,omitempty"`
	// DeviceDown is cumulative realized device downtime across the fleet.
	DeviceDown time.Duration `json:"deviceDown,omitempty"`
}

// event kinds, in the order they appear in event logs. The first five are
// the fault-free lifecycle and their log lines are pinned byte-for-byte by
// the determinism regressions; the fault kinds below only ever appear under
// a non-nil Scenario.Faults.
const (
	evArrive  = iota // job enters the system
	evStart          // a host picks the job up
	evGrant          // the job acquires a QPU device
	evRelease        // the job releases its device
	evDone           // the job completes; its host frees
	evDown           // a device dies (fault regime)
	evUp             // a device revives (fault regime)
	evDrop           // a submission attempt is lost on the wire
	evAbort          // a device death aborts the job's in-flight service
	evFail           // the job fails for good (budget exhausted)
)

var evName = [...]string{"arrive", "start", "qpu+", "qpu-", "done", "down", "up", "drop", "abort", "fail"}

// event is one heap entry. Ties on time break on push sequence, so the
// replay order — and therefore the event log — is fully deterministic.
// Job events capture the job's attempt counter at push time: a device death
// bumps the counter, which invalidates the aborted attempt's pending
// release without having to dig it out of the heap. Device events carry dev
// instead of a job.
type event struct {
	at      time.Duration
	seq     int
	kind    int
	job     *job
	attempt int
	dev     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// job carries one arrival through the pipeline.
type job struct {
	id      int
	class   int
	profile arch.JobProfile

	arrive   time.Duration
	submitAt time.Duration // successful submission (= arrive unless drops)
	start    time.Duration // host pickup
	reqAt    time.Duration // latest QPU request point
	qpuGrant time.Duration
	done     time.Duration

	client int // closed-loop submitter, else -1

	// Fault state: the deterministic drop plan still to realize, the
	// attempt counter that invalidates aborted releases, the retry budget
	// consumed, the device currently held, and accumulated QPU wait
	// across attempts.
	drops      int
	fatalDrop  bool
	announced  bool // the arrival has been logged and the next one scheduled
	attempt    int
	retries    int
	dev        int
	qpuWaitAcc time.Duration
}

// sim is the mutable simulation state.
type sim struct {
	sc   *workload.Scenario
	sys  arch.System
	opts Options

	heap eventHeap
	free []*event // recycled heap entries: four events per job add up at 1e6 jobs
	seq  int
	now  time.Duration

	freeHosts int
	// backlog holds jobs waiting for a host, ordered by the scenario's
	// scheduling policy (sched.New is deterministic, so event logs stay
	// byte-identical under every policy).
	backlog sched.Queue[*job]

	// Device pool: shared systems have one device, dedicated systems one
	// per host. Fault-free dedicated runs always find a free device at
	// request time (hosts == devices), so the pool reproduces the old
	// token-bypass event times exactly; under a fault regime devices go
	// down and jobs queue in qpuFIFO until one revives.
	devUp     []bool
	devFree   []int  // up, unheld devices, granted FIFO
	devHolder []*job // device → in-service job
	qpuFIFO   []*job // jobs waiting for any device

	// Fault-schedule state, inert without Scenario.Faults.
	devGen     []*workload.OutageGen
	devOutage  []workload.Outage // current outage per device
	devDownAt  []time.Duration
	retryLimit int
	backoff    time.Duration

	// admission
	nextID    int
	live      int // admitted jobs not yet completed or failed
	arrivals  *workload.ArrivalGen
	jobLimit  int           // max admitted jobs (0 = unbounded)
	timeLimit time.Duration // no admissions after this offset (0 = unbounded)

	// accounting
	queueWait    []time.Duration
	qpuWait      []time.Duration
	sojourn      []time.Duration
	classSojourn [][]time.Duration // indexed by mix class
	hostBusy     time.Duration
	qpuBusy      time.Duration
	end          time.Duration
	failed       int
	retries      int
	drops        int
	deviceDown   time.Duration
}

// Simulate runs the scenario to completion — every admitted job finishes —
// and returns the aggregate result.
func Simulate(sc *workload.Scenario, opts Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sys, err := sc.System.Arch()
	if err != nil {
		return nil, err
	}
	s := &sim{
		sc:         sc,
		sys:        sys,
		opts:       opts,
		freeHosts:  sys.Hosts,
		backlog:    sched.New[*job](sc.Policy),
		jobLimit:   sc.Horizon.Jobs,
		timeLimit:  sc.Horizon.Duration.D(),
		retryLimit: sc.RetryLimit(),
		backoff:    sc.RetryBackoff(),
	}
	devs := sc.System.QPUs()
	s.devUp = make([]bool, devs)
	s.devHolder = make([]*job, devs)
	s.devFree = make([]int, 0, devs)
	for d := 0; d < devs; d++ {
		s.devUp[d] = true
		s.devFree = append(s.devFree, d)
	}
	if sc.HasDeviceFaults() {
		s.devGen = make([]*workload.OutageGen, devs)
		s.devOutage = make([]workload.Outage, devs)
		s.devDownAt = make([]time.Duration, devs)
		for d := 0; d < devs; d++ {
			s.devGen[d] = sc.OutageSource(d)
			if o, ok := s.devGen[d].Next(); ok {
				s.devOutage[d] = o
				s.pushDev(o.At, evDown, d)
			}
		}
	}
	if err := s.prime(); err != nil {
		return nil, err
	}
	for !s.heap.empty() {
		e := heap.Pop(&s.heap).(*event)
		if e.job == nil && s.live == 0 {
			// Only the device-fault schedule remains and the workload
			// is drained — no job can ever arrive again, so replaying
			// further outages would just pad the log.
			break
		}
		s.now = e.at
		s.dispatch(e)
		e.job = nil
		s.free = append(s.free, e)
	}
	return s.result(), nil
}

// prime seeds the heap with the first arrivals.
func (s *sim) prime() error {
	if s.sc.Arrival.Kind == workload.ClosedLoop {
		// Every client submits its first job at t=0, in client order.
		for c := 0; c < s.sc.Arrival.Clients; c++ {
			if !s.admitLocked(0, c) {
				break
			}
		}
		return nil
	}
	gen, err := s.sc.Arrivals()
	if err != nil {
		return err
	}
	s.arrivals = gen
	s.scheduleNextArrival()
	return nil
}

// scheduleNextArrival admits the next open-process arrival, if the horizon
// allows one.
func (s *sim) scheduleNextArrival() {
	if s.arrivals == nil {
		return
	}
	if s.jobLimit > 0 && s.nextID >= s.jobLimit {
		return
	}
	off, ok := s.arrivals.Next()
	if !ok {
		return
	}
	if s.jobLimit == 0 && s.timeLimit > 0 && off > s.timeLimit {
		return
	}
	s.admitLocked(off, -1)
}

// admitLocked creates job nextID arriving at off and schedules its arrival
// event. It reports whether the horizon admitted the job.
func (s *sim) admitLocked(off time.Duration, client int) bool {
	if s.jobLimit > 0 && s.nextID >= s.jobLimit {
		return false
	}
	if s.timeLimit > 0 && off > s.timeLimit {
		return false
	}
	sample := s.sc.JobAt(s.nextID)
	j := &job{
		id:      s.nextID,
		class:   sample.Class,
		profile: sample.Profile,
		arrive:  off,
		client:  client,
		dev:     -1,
	}
	plan := s.sc.DropPlanFor(j.id)
	j.drops, j.fatalDrop = plan.Drops, plan.Fatal
	s.nextID++
	s.live++
	s.push(off, evArrive, j)
	return true
}

func (s *sim) push(at time.Duration, kind int, j *job) {
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e, s.free = s.free[n-1], s.free[:n-1]
		*e = event{at: at, seq: s.seq, kind: kind, job: j, attempt: j.attempt}
	} else {
		e = &event{at: at, seq: s.seq, kind: kind, job: j, attempt: j.attempt}
	}
	heap.Push(&s.heap, e)
}

// pushDev schedules a device-fault event; dev events carry no job.
func (s *sim) pushDev(at time.Duration, kind, dev int) {
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, kind: kind, dev: dev})
}

func (s *sim) log(kind int, j *job) {
	if s.opts.EventLog == nil {
		return
	}
	fmt.Fprintf(s.opts.EventLog, "%d %s job=%d class=%d\n", s.now, evName[kind], j.id, j.class)
}

func (s *sim) logDev(kind, dev int) {
	if s.opts.EventLog == nil {
		return
	}
	fmt.Fprintf(s.opts.EventLog, "%d %s dev=%d\n", s.now, evName[kind], dev)
}

func (s *sim) dispatch(e *event) {
	j := e.job
	switch e.kind {
	case evArrive:
		first := !j.announced
		if first {
			j.announced = true
			s.log(evArrive, j)
		}
		if j.drops > 0 {
			// This submission attempt is lost on the wire; the job
			// retries after the backoff, or fails outright when its
			// whole budget drops.
			j.drops--
			s.log(evDrop, j)
			s.drops++
			if j.fatalDrop && j.drops == 0 {
				s.failJob(j, false)
			} else {
				s.push(s.now+s.backoff, evArrive, j)
			}
		} else {
			j.submitAt = s.now
			if s.freeHosts > 0 {
				s.freeHosts--
				s.startJob(j)
			} else {
				s.backlog.Push(j, s.sc.SchedJob(workload.Job{Class: j.class, Profile: j.profile}))
			}
		}
		// Keep exactly one pending open-process arrival in the heap.
		if first && j.client < 0 {
			s.scheduleNextArrival()
		}

	case evStart:
		// evStart events are synthesized inline by startJob; never queued.

	case evGrant:
		// The job reached its QPU-request point (pre-process + request
		// network done, or a retry backoff expired). Devices grant FIFO;
		// fault-free dedicated systems always have one free here.
		j.reqAt = s.now
		s.tryGrant(j)

	case evRelease:
		if e.attempt != j.attempt {
			return // stale: a device death already aborted this attempt
		}
		s.log(evRelease, j)
		s.qpuBusy += s.now - j.qpuGrant
		dev := j.dev
		s.devHolder[dev] = nil
		j.dev = -1
		// Completion: response network + post-process.
		s.push(s.now+j.profile.Network+j.profile.PostProcess, evDone, j)
		s.serveOrFree(dev)

	case evDone:
		s.log(evDone, j)
		j.done = s.now
		s.complete(j)
		if next, ok := s.backlog.Pop(); ok {
			s.startJob(next)
		} else {
			s.freeHosts++
		}
		// Closed loop: the client thinks, then submits its next job.
		if j.client >= 0 {
			s.admitLocked(s.now+s.sc.Arrival.Think.D(), j.client)
		}

	case evDown:
		dev := e.dev
		s.devUp[dev] = false
		s.devDownAt[dev] = s.now
		s.logDev(evDown, dev)
		if h := s.devHolder[dev]; h != nil {
			// The death aborts the in-flight service. The host keeps
			// the job and re-requests a device after the backoff —
			// the lease re-dispatch — unless the retry budget is
			// spent, in which case the job fails and the host frees.
			s.qpuBusy += s.now - h.qpuGrant
			s.devHolder[dev] = nil
			h.dev = -1
			h.attempt++
			s.log(evAbort, h)
			if h.retries >= s.retryLimit {
				s.failJob(h, true)
			} else {
				h.retries++
				s.retries++
				s.push(s.now+s.backoff, evGrant, h)
			}
		} else {
			s.removeFree(dev)
		}
		s.pushDev(s.now+s.devOutage[dev].For, evUp, dev)

	case evUp:
		dev := e.dev
		s.devUp[dev] = true
		s.deviceDown += s.now - s.devDownAt[dev]
		s.logDev(evUp, dev)
		s.serveOrFree(dev)
		if o, ok := s.devGen[dev].Next(); ok {
			s.devOutage[dev] = o
			s.pushDev(o.At, evDown, dev)
		}
	}
}

// startJob begins host service for j at the current time: the host is held
// until evDone. The QPU request lands after pre-process + request network.
func (s *sim) startJob(j *job) {
	j.start = s.now
	s.log(evStart, j)
	s.push(s.now+j.profile.PreProcess+j.profile.Network, evGrant, j)
}

// tryGrant gives j the next free device, or parks it in the FIFO.
func (s *sim) tryGrant(j *job) {
	if len(s.devFree) > 0 {
		dev := s.devFree[0]
		s.devFree = s.devFree[1:]
		s.assign(j, dev)
	} else {
		s.qpuFIFO = append(s.qpuFIFO, j)
	}
}

// assign grants device dev to j now and schedules the release.
func (s *sim) assign(j *job, dev int) {
	j.dev = dev
	s.devHolder[dev] = j
	j.qpuGrant = s.now
	j.qpuWaitAcc += s.now - j.reqAt
	s.log(evGrant, j)
	s.push(s.now+j.profile.QPUService, evRelease, j)
}

// serveOrFree hands an available device to the FIFO head, or parks it in
// the free list.
func (s *sim) serveOrFree(dev int) {
	if len(s.qpuFIFO) > 0 {
		next := s.qpuFIFO[0]
		s.qpuFIFO = s.qpuFIFO[1:]
		s.assign(next, dev)
	} else {
		s.devFree = append(s.devFree, dev)
	}
}

// removeFree pulls a dead device out of the free list.
func (s *sim) removeFree(dev int) {
	for i, d := range s.devFree {
		if d == dev {
			s.devFree = append(s.devFree[:i], s.devFree[i+1:]...)
			return
		}
	}
}

// failJob records a job lost to the fault regime. hosted says whether a
// host is carrying the job (retry exhaustion) or it never got one (fatal
// drop). Closed-loop clients resubmit after their think time either way —
// a failed request does not shrink the client population.
func (s *sim) failJob(j *job, hosted bool) {
	s.log(evFail, j)
	s.failed++
	s.live--
	if hosted {
		if next, ok := s.backlog.Pop(); ok {
			s.startJob(next)
		} else {
			s.freeHosts++
		}
	}
	if j.client >= 0 {
		s.admitLocked(s.now+s.sc.Arrival.Think.D(), j.client)
	}
}

func (s *sim) complete(j *job) {
	s.live--
	s.queueWait = append(s.queueWait, j.start-j.submitAt)
	s.qpuWait = append(s.qpuWait, j.qpuWaitAcc)
	s.sojourn = append(s.sojourn, j.done-j.arrive)
	if s.classSojourn == nil {
		s.classSojourn = make([][]time.Duration, len(s.sc.Mix))
	}
	s.classSojourn[j.class] = append(s.classSojourn[j.class], j.done-j.arrive)
	s.hostBusy += j.done - j.start
	if j.done > s.end {
		s.end = j.done
	}
}

func (s *sim) result() *Result {
	r := &Result{
		Scenario:  s.sc.Name,
		Jobs:      len(s.sojourn),
		End:       s.end,
		QueueWait: stats.SummarizeDurations(s.queueWait),
		QPUWait:   stats.SummarizeDurations(s.qpuWait),
		Sojourn:   stats.SummarizeDurations(s.sojourn),
	}
	if len(s.sc.Mix) > 1 {
		r.ClassSojourn = make([]stats.DurationSummary, len(s.sc.Mix))
		for c, ds := range s.classSojourn {
			r.ClassSojourn[c] = stats.SummarizeDurations(ds)
		}
	}
	r.Admitted = s.nextID
	r.Failed = s.failed
	r.Retries = s.retries
	r.Drops = s.drops
	r.DeviceDown = s.deviceDown
	if s.end > 0 {
		r.Throughput = float64(r.Jobs) / s.end.Seconds()
		r.HostBusy = float64(s.hostBusy) / (float64(s.end) * float64(s.sys.Hosts))
		r.QPUBusy = float64(s.qpuBusy) / (float64(s.end) * float64(len(s.devUp)))
	}
	return r
}

// String renders the result in the fixed format the determinism regression
// byte-compares; the fault line appears only when the run realized faults,
// so fault-free renderings are byte-identical to the historical format.
func (r *Result) String() string {
	out := fmt.Sprintf("scenario=%q jobs=%d end=%v throughput=%.4f\n  queueWait %v\n  qpuWait   %v\n  sojourn   %v\n  hostBusy=%.4f qpuBusy=%.4f",
		r.Scenario, r.Jobs, r.End, r.Throughput, r.QueueWait, r.QPUWait, r.Sojourn, r.HostBusy, r.QPUBusy)
	if r.Failed > 0 || r.Retries > 0 || r.Drops > 0 || r.DeviceDown > 0 {
		out += fmt.Sprintf("\n  failed=%d retries=%d drops=%d deviceDown=%v", r.Failed, r.Retries, r.Drops, r.DeviceDown)
	}
	return out
}
