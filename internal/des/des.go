// Package des is the open-system discrete-event simulator of the workload
// engine: it runs a workload.Scenario against any of the paper's Fig. 1
// architectures in virtual time — no wall-clock sleeping — and reports the
// response-time distributions (queue wait, QPU wait, sojourn) that the
// closed-batch makespan models of internal/arch cannot answer.
//
// The simulated discipline mirrors the live dispatch service exactly: a job
// arrives, waits in a backlog ordered by the scenario's scheduling policy
// (internal/sched: FIFO, priority, shortest-expected-QPU-first or weighted
// fair share) for a free host worker, then the host carries it end to end —
// pre-process, request network, queue for a QPU service token, serialized
// QPU service, response network, post-process — and only then takes the
// next job. Shared-resource systems have one QPU token for all hosts;
// dedicated systems give every host its own, so a held job's QPU is free by
// construction. The QPU token queue itself stays FIFO under every policy,
// matching the live fleet's channel semantics.
//
// Cluster scenarios (workload.ClusterSpec) replicate the deployment across
// N shards behind the same consistent-hash ring the live router tier uses
// (internal/ring): a job's class key resolves its home shard, a backlog
// past the steal threshold diverts it to the least-loaded shard, and a
// shard fault aborts the shard's in-flight jobs and re-dispatches them to
// survivors against the scenario's retry budget — the simulator remains
// the predictive twin of the federated system. Scheduled membership events
// (ClusterSpec.Events) make the membership elastic: a join brings a fresh
// shard's hosts and devices into the ring at a virtual time, a planned
// drain removes a shard gracefully — queued work re-routes for free,
// in-flight work completes — and hash ownership tracks the evolving member
// set with bounded key movement (internal/ring's Moved diff predicts
// exactly which keys change owner).
//
// Costs are O(events · log events) on a binary heap keyed by (time, push
// sequence), so identical scenarios replay byte-identical event logs at any
// GOMAXPROCS — millions of simulated arrivals take milliseconds, against
// the hours a live replay would need. Analytic (analytic.go) supplies the
// M/M/c cross-check for the exponential single-class case, validating the
// simulator against queueing theory.
package des

import (
	"container/heap"
	"fmt"
	"io"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/stats"
	"github.com/splitexec/splitexec/internal/workload"
)

// Options configure a simulation run.
type Options struct {
	// EventLog, when non-nil, receives one line per simulator event
	// (times in virtual nanoseconds). Identical scenario + seed produce
	// byte-identical logs — the determinism regression anchor.
	EventLog io.Writer
}

// ShardStats is one shard's slice of a cluster result.
type ShardStats struct {
	// Jobs counts completions dispatched to this shard (on their final,
	// successful attempt).
	Jobs    int                   `json:"jobs"`
	Sojourn stats.DurationSummary `json:"sojourn"`
	// ClassSojourn breaks the shard's sojourns down per mix class.
	ClassSojourn []stats.DurationSummary `json:"classSojourn,omitempty"`
}

// Result aggregates one simulated scenario run.
type Result struct {
	Scenario string `json:"scenario,omitempty"`
	// Jobs is the number of completed (= admitted) jobs.
	Jobs int `json:"jobs"`
	// End is the virtual completion time of the last job; Throughput is
	// Jobs over End in jobs/second.
	End        time.Duration `json:"end"`
	Throughput float64       `json:"throughput"`

	// QueueWait is arrival→host pickup, QPUWait the wait for a service
	// token, Sojourn arrival→completion — the open-system latency triple.
	QueueWait stats.DurationSummary `json:"queueWait"`
	QPUWait   stats.DurationSummary `json:"qpuWait"`
	Sojourn   stats.DurationSummary `json:"sojourn"`

	// ClassSojourn breaks the sojourn distribution down per mix class —
	// the view that makes scheduling policies legible: priority shifts
	// latency between classes, fair share apportions it by weight.
	ClassSojourn []stats.DurationSummary `json:"classSojourn,omitempty"`

	// Shards breaks the run down per cluster shard (cluster scenarios
	// only) — the per-shard view next to the aggregate above.
	Shards []ShardStats `json:"shards,omitempty"`

	// HostBusy and QPUBusy are utilization fractions: cumulative busy
	// time over capacity × End.
	HostBusy float64 `json:"hostBusy"`
	QPUBusy  float64 `json:"qpuBusy"`

	// Admitted counts every job the horizon admitted. Under a fault
	// regime Jobs + Failed == Admitted is the conservation invariant the
	// chaos tests pin: a job either completes or fails, never both,
	// never neither.
	Admitted int `json:"admitted,omitempty"`
	// Failed counts jobs lost to the fault regime: a fatal connection
	// drop, or a retry budget exhausted by device deaths or shard loss.
	Failed int `json:"failed,omitempty"`
	// Retries counts service attempts aborted by a device death or a
	// shard loss and re-dispatched after the backoff.
	Retries int `json:"retries,omitempty"`
	// Drops counts submission attempts lost to wire-path connection
	// drops.
	Drops int `json:"drops,omitempty"`
	// DeviceDown is cumulative realized device downtime across the fleet.
	DeviceDown time.Duration `json:"deviceDown,omitempty"`
}

// event kinds, in the order they appear in event logs. The first five are
// the fault-free lifecycle and their log lines are pinned byte-for-byte by
// the determinism regressions; the fault kinds below only ever appear under
// a non-nil Scenario.Faults, and the shard kinds only in cluster runs.
const (
	evArrive    = iota // job enters the system
	evStart            // a host picks the job up
	evGrant            // the job acquires a QPU device
	evRelease          // the job releases its device
	evDone             // the job completes; its host frees
	evDown             // a device dies (fault regime)
	evUp               // a device revives (fault regime)
	evDrop             // a submission attempt is lost on the wire
	evAbort            // a device death aborts the job's in-flight service
	evFail             // the job fails for good (budget exhausted)
	evRoute            // a shard-loss re-dispatch lands after its backoff
	evShardDown        // a whole shard dies (cluster fault)
	evShardUp          // a dead shard rejoins
	evJoin             // a scheduled membership join: a fresh shard enters the ring
	evDrain            // a scheduled planned drain: a shard leaves the ring gracefully
)

var evName = [...]string{"arrive", "start", "qpu+", "qpu-", "done", "down", "up", "drop", "abort", "fail", "route", "sdown", "sup", "join", "drain"}

// event is one heap entry. Ties on time break on push sequence, so the
// replay order — and therefore the event log — is fully deterministic.
// Job events capture the job's attempt counter at push time: a device death
// or shard loss bumps the counter, which invalidates the aborted attempt's
// pending events without having to dig them out of the heap. Device and
// shard events carry (shard, dev) instead of a job.
type event struct {
	at      time.Duration
	seq     int
	kind    int
	job     *job
	attempt int
	shard   int
	dev     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// job carries one arrival through the pipeline.
type job struct {
	id      int
	class   int
	profile arch.JobProfile

	arrive   time.Duration
	submitAt time.Duration // successful submission (= arrive unless drops)
	start    time.Duration // host pickup
	reqAt    time.Duration // latest QPU request point
	qpuGrant time.Duration
	done     time.Duration

	client int // closed-loop submitter, else -1
	shard  int // dispatched shard, -1 before routing

	// Fault state: the deterministic drop plan still to realize, the
	// attempt counter that invalidates aborted events, the retry budget
	// consumed, the device currently held, and accumulated QPU wait
	// across attempts.
	drops      int
	fatalDrop  bool
	announced  bool // the arrival has been logged and the next one scheduled
	attempt    int
	retries    int
	dev        int
	qpuWaitAcc time.Duration
}

// simShard is one shard's mutable state: a full copy of the single-node
// deployment — hosts, policy backlog, device pool, outage schedule.
type simShard struct {
	idx int
	// present is ring membership (scheduled joins and planned drains flip
	// it); up is fault state (shard crashes flip it). A shard is routable
	// only when both hold — a joiner's slot exists from t=0 (its devices
	// live and may even realize outages, matching the idle live service)
	// but takes no traffic until its join event.
	present   bool
	up        bool
	freeHosts int
	// backlog holds jobs waiting for a host, ordered by the scenario's
	// scheduling policy (sched.New is deterministic, so event logs stay
	// byte-identical under every policy).
	backlog sched.Queue[*job]
	// hosted lists the jobs the shard's hosts are carrying, in pickup
	// order — the set a shard death aborts deterministically.
	hosted []*job

	// Device pool: shared systems have one device, dedicated systems one
	// per host. Fault-free dedicated runs always find a free device at
	// request time (hosts == devices), so the pool reproduces the old
	// token-bypass event times exactly; under a fault regime devices go
	// down and jobs queue in qpuFIFO until one revives.
	devUp     []bool
	devFree   []int  // up, unheld devices, granted FIFO
	devHolder []*job // device → in-service job
	qpuFIFO   []*job // hosted jobs waiting for any device

	// Device fault-schedule state, inert without Scenario.Faults.
	devGen    []*workload.OutageGen
	devOutage []workload.Outage // current outage per device
	devDownAt []time.Duration
}

// avail reports whether the shard can take traffic: in the ring and not
// crashed.
func (sh *simShard) avail() bool { return sh.present && sh.up }

// sim is the mutable simulation state.
type sim struct {
	sc   *workload.Scenario
	sys  arch.System
	opts Options

	heap eventHeap
	free []*event // recycled heap entries: four events per job add up at 1e6 jobs
	seq  int
	now  time.Duration

	shards  []*simShard
	cluster bool
	steal   int
	// rings caches the hash ring per shard-membership set, keyed by a
	// 3-state pattern per slot — '1' present and up, '0' present but down,
	// '.' absent — so arbitrary member sets (joins, drains, faults) each
	// build their ring once.
	rings map[string]*ring.Ring
	// pending parks jobs that arrive while every shard is down; they
	// re-route when one rejoins.
	pending []*job

	retryLimit int
	backoff    time.Duration

	// admission
	nextID    int
	live      int // admitted jobs not yet completed or failed
	arrivals  *workload.ArrivalGen
	jobLimit  int           // max admitted jobs (0 = unbounded)
	timeLimit time.Duration // no admissions after this offset (0 = unbounded)

	// accounting
	queueWait    []time.Duration
	qpuWait      []time.Duration
	sojourn      []time.Duration
	classSojourn [][]time.Duration   // indexed by mix class
	shardSojourn [][]time.Duration   // indexed by shard (cluster runs)
	shardClass   [][][]time.Duration // shard → class → sojourns
	hostBusy     time.Duration
	qpuBusy      time.Duration
	end          time.Duration
	failed       int
	retries      int
	drops        int
	deviceDown   time.Duration
}

// Simulate runs the scenario to completion — every admitted job finishes —
// and returns the aggregate result.
func Simulate(sc *workload.Scenario, opts Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sys, err := sc.System.Arch()
	if err != nil {
		return nil, err
	}
	shardCount := sc.ShardCount()
	total := sc.TotalShards()
	s := &sim{
		sc:         sc,
		sys:        sys,
		opts:       opts,
		cluster:    total > 1,
		steal:      sc.StealThreshold(),
		rings:      map[string]*ring.Ring{},
		jobLimit:   sc.Horizon.Jobs,
		timeLimit:  sc.Horizon.Duration.D(),
		retryLimit: sc.RetryLimit(),
		backoff:    sc.RetryBackoff(),
	}
	devs := sc.System.QPUs()
	for x := 0; x < total; x++ {
		// Slots beyond the initial membership are scheduled joiners: they
		// exist from t=0 (devices live, outage streams running — the idle
		// provisioned service) but hold no hosts or free devices and take
		// no traffic until their join event.
		present := x < shardCount
		sh := &simShard{
			idx:       x,
			present:   present,
			up:        true,
			backlog:   sched.New[*job](sc.Policy),
			devUp:     make([]bool, devs),
			devHolder: make([]*job, devs),
			devFree:   make([]int, 0, devs),
		}
		if present {
			sh.freeHosts = sys.Hosts
		}
		for d := 0; d < devs; d++ {
			sh.devUp[d] = true
			if present {
				sh.devFree = append(sh.devFree, d)
			}
		}
		if sc.HasDeviceFaults() {
			sh.devGen = make([]*workload.OutageGen, devs)
			sh.devOutage = make([]workload.Outage, devs)
			sh.devDownAt = make([]time.Duration, devs)
			for d := 0; d < devs; d++ {
				// Global device numbering x·devs+d keeps the outage
				// streams identical to the live fleet mapping (and to
				// the historical single-shard streams when x == 0).
				sh.devGen[d] = sc.OutageSource(x*devs + d)
				if o, ok := sh.devGen[d].Next(); ok {
					sh.devOutage[d] = o
					s.pushDev(o.At, evDown, x, d)
				}
			}
		}
		s.shards = append(s.shards, sh)
	}
	if s.cluster && sc.HasShardFault() {
		sf := sc.Faults.Shard
		s.pushDev(sf.At.D(), evShardDown, sf.Shard, 0)
		if sf.For > 0 {
			s.pushDev(sf.At.D()+sf.For.D(), evShardUp, sf.Shard, 0)
		}
	}
	for _, me := range sc.MemberEvents() {
		kind := evJoin
		if me.Kind == workload.DrainEvent {
			kind = evDrain
		}
		s.pushDev(me.At.D(), kind, me.Shard, 0)
	}
	if err := s.prime(); err != nil {
		return nil, err
	}
	for !s.heap.empty() {
		e := heap.Pop(&s.heap).(*event)
		if e.job == nil && s.live == 0 {
			// Only the fault schedule remains and the workload is
			// drained — no job can ever arrive again, so replaying
			// further outages would just pad the log.
			break
		}
		s.now = e.at
		s.dispatch(e)
		e.job = nil
		s.free = append(s.free, e)
	}
	return s.result(), nil
}

// prime seeds the heap with the first arrivals.
func (s *sim) prime() error {
	if s.sc.Arrival.Kind == workload.ClosedLoop {
		// Every client submits its first job at t=0, in client order.
		for c := 0; c < s.sc.Arrival.Clients; c++ {
			if !s.admitLocked(0, c) {
				break
			}
		}
		return nil
	}
	gen, err := s.sc.Arrivals()
	if err != nil {
		return err
	}
	s.arrivals = gen
	s.scheduleNextArrival()
	return nil
}

// scheduleNextArrival admits the next open-process arrival, if the horizon
// allows one.
func (s *sim) scheduleNextArrival() {
	if s.arrivals == nil {
		return
	}
	if s.jobLimit > 0 && s.nextID >= s.jobLimit {
		return
	}
	off, ok := s.arrivals.Next()
	if !ok {
		return
	}
	if s.jobLimit == 0 && s.timeLimit > 0 && off > s.timeLimit {
		return
	}
	s.admitLocked(off, -1)
}

// admitLocked creates job nextID arriving at off and schedules its arrival
// event. It reports whether the horizon admitted the job.
func (s *sim) admitLocked(off time.Duration, client int) bool {
	if s.jobLimit > 0 && s.nextID >= s.jobLimit {
		return false
	}
	if s.timeLimit > 0 && off > s.timeLimit {
		return false
	}
	sample := s.sc.JobAt(s.nextID)
	j := &job{
		id:      s.nextID,
		class:   sample.Class,
		profile: sample.Profile,
		arrive:  off,
		client:  client,
		shard:   -1,
		dev:     -1,
	}
	plan := s.sc.DropPlanFor(j.id)
	j.drops, j.fatalDrop = plan.Drops, plan.Fatal
	s.nextID++
	s.live++
	s.push(off, evArrive, j)
	return true
}

func (s *sim) push(at time.Duration, kind int, j *job) {
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e, s.free = s.free[n-1], s.free[:n-1]
		*e = event{at: at, seq: s.seq, kind: kind, job: j, attempt: j.attempt}
	} else {
		e = &event{at: at, seq: s.seq, kind: kind, job: j, attempt: j.attempt}
	}
	heap.Push(&s.heap, e)
}

// pushDev schedules a device- or shard-fault event; they carry no job.
func (s *sim) pushDev(at time.Duration, kind, shard, dev int) {
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, kind: kind, shard: shard, dev: dev})
}

func (s *sim) log(kind int, j *job) {
	if s.opts.EventLog == nil {
		return
	}
	if s.cluster {
		fmt.Fprintf(s.opts.EventLog, "%d %s job=%d class=%d shard=%d\n", s.now, evName[kind], j.id, j.class, j.shard)
		return
	}
	fmt.Fprintf(s.opts.EventLog, "%d %s job=%d class=%d\n", s.now, evName[kind], j.id, j.class)
}

func (s *sim) logDev(kind, shard, dev int) {
	if s.opts.EventLog == nil {
		return
	}
	if s.cluster {
		fmt.Fprintf(s.opts.EventLog, "%d %s shard=%d dev=%d\n", s.now, evName[kind], shard, dev)
		return
	}
	fmt.Fprintf(s.opts.EventLog, "%d %s dev=%d\n", s.now, evName[kind], dev)
}

func (s *sim) logShard(kind, shard int) {
	if s.opts.EventLog != nil {
		fmt.Fprintf(s.opts.EventLog, "%d %s shard=%d\n", s.now, evName[kind], shard)
	}
}

func (s *sim) dispatch(e *event) {
	j := e.job
	switch e.kind {
	case evArrive:
		first := !j.announced
		if first {
			j.announced = true
			s.log(evArrive, j)
		}
		if j.drops > 0 {
			// This submission attempt is lost on the wire; the job
			// retries after the backoff, or fails outright when its
			// whole budget drops.
			j.drops--
			s.log(evDrop, j)
			s.drops++
			if j.fatalDrop && j.drops == 0 {
				s.failJob(j, nil)
			} else {
				s.push(s.now+s.backoff, evArrive, j)
			}
		} else {
			j.submitAt = s.now
			s.routeJob(j)
		}
		// Keep exactly one pending open-process arrival in the heap.
		if first && j.client < 0 {
			s.scheduleNextArrival()
		}

	case evStart:
		// evStart events are synthesized inline by startJob; never queued.

	case evGrant:
		if e.attempt != j.attempt {
			return // stale: a shard loss already aborted this attempt
		}
		// The job reached its QPU-request point (pre-process + request
		// network done, or a retry backoff expired). Devices grant FIFO;
		// fault-free dedicated systems always have one free here.
		j.reqAt = s.now
		s.tryGrant(s.shards[j.shard], j)

	case evRelease:
		if e.attempt != j.attempt {
			return // stale: a device death already aborted this attempt
		}
		s.log(evRelease, j)
		s.qpuBusy += s.now - j.qpuGrant
		sh := s.shards[j.shard]
		dev := j.dev
		sh.devHolder[dev] = nil
		j.dev = -1
		// Completion: response network + post-process.
		s.push(s.now+j.profile.Network+j.profile.PostProcess, evDone, j)
		s.serveOrFree(sh, dev)

	case evDone:
		if e.attempt != j.attempt {
			return // stale: a shard loss aborted the post-processing host
		}
		s.log(evDone, j)
		j.done = s.now
		s.complete(j)
		sh := s.shards[j.shard]
		sh.removeHosted(j)
		if next, ok := sh.backlog.Pop(); ok {
			s.startJob(sh, next)
		} else {
			sh.freeHosts++
		}
		// Closed loop: the client thinks, then submits its next job.
		if j.client >= 0 {
			s.admitLocked(s.now+s.sc.Arrival.Think.D(), j.client)
		}

	case evRoute:
		// A shard-loss re-dispatch: the backoff elapsed, route again.
		s.routeJob(j)

	case evDown:
		sh := s.shards[e.shard]
		dev := e.dev
		sh.devUp[dev] = false
		sh.devDownAt[dev] = s.now
		s.logDev(evDown, e.shard, dev)
		if h := sh.devHolder[dev]; h != nil {
			// The death aborts the in-flight service. The host keeps
			// the job and re-requests a device after the backoff —
			// the lease re-dispatch — unless the retry budget is
			// spent, in which case the job fails and the host frees.
			s.qpuBusy += s.now - h.qpuGrant
			sh.devHolder[dev] = nil
			h.dev = -1
			h.attempt++
			s.log(evAbort, h)
			if h.retries >= s.retryLimit {
				s.failJob(h, sh)
			} else {
				h.retries++
				s.retries++
				s.push(s.now+s.backoff, evGrant, h)
			}
		} else {
			sh.removeFree(dev)
		}
		s.pushDev(s.now+sh.devOutage[dev].For, evUp, e.shard, dev)

	case evUp:
		sh := s.shards[e.shard]
		dev := e.dev
		sh.devUp[dev] = true
		s.deviceDown += s.now - sh.devDownAt[dev]
		s.logDev(evUp, e.shard, dev)
		if sh.avail() {
			s.serveOrFree(sh, dev)
		}
		if o, ok := sh.devGen[dev].Next(); ok {
			sh.devOutage[dev] = o
			s.pushDev(o.At, evDown, e.shard, dev)
		}

	case evShardDown:
		s.shardDown(s.shards[e.shard])

	case evShardUp:
		s.shardUp(s.shards[e.shard])

	case evJoin:
		s.join(s.shards[e.shard])

	case evDrain:
		s.drainShard(s.shards[e.shard])
	}
}

// routeJob resolves a job's shard — hash ownership over the up members,
// diverted by the steal rule when the home backlog is deep — and hands it
// to a free host or the shard backlog. With every shard down the job parks
// until one rejoins.
func (s *sim) routeJob(j *job) {
	sh := s.route(j)
	if sh == nil {
		s.pending = append(s.pending, j)
		return
	}
	j.shard = sh.idx
	if sh.freeHosts > 0 {
		sh.freeHosts--
		s.startJob(sh, j)
	} else {
		sh.backlog.Push(j, s.sc.SchedJob(workload.Job{Class: j.class, Profile: j.profile}))
	}
}

// route picks the dispatch shard for j, or nil when no shard is up.
func (s *sim) route(j *job) *simShard {
	if !s.cluster {
		return s.shards[0]
	}
	home := s.owner(workload.ClassKey(j.class))
	if home == nil {
		return nil
	}
	if s.steal > 0 && home.backlog.Len() >= s.steal {
		if alt := s.minBacklog(); alt != nil {
			return alt
		}
	}
	return home
}

// owner resolves a shard key over the current available membership through
// the cached consistent-hash ring — the identical computation the live
// router makes, so both sides agree on every assignment.
func (s *sim) owner(key string) *simShard {
	mask := make([]byte, len(s.shards))
	members := make([]string, 0, len(s.shards))
	idxs := make([]int, 0, len(s.shards))
	for i, sh := range s.shards {
		switch {
		case sh.avail():
			mask[i] = '1'
			members = append(members, workload.ShardName(i))
			idxs = append(idxs, i)
		case sh.present:
			mask[i] = '0'
		default:
			mask[i] = '.'
		}
	}
	if len(members) == 0 {
		return nil
	}
	replicas := 0
	if s.sc.Cluster != nil {
		replicas = s.sc.Cluster.Replicas
	}
	r, ok := s.rings[string(mask)]
	if !ok {
		r = ring.New(members, replicas)
		s.rings[string(mask)] = r
	}
	return s.shards[idxs[r.Owner(key)]]
}

// minBacklog is the steal target: the available shard with the shortest
// backlog, ties broken on the lowest index.
func (s *sim) minBacklog() *simShard {
	var best *simShard
	for _, sh := range s.shards {
		if !sh.avail() {
			continue
		}
		if best == nil || sh.backlog.Len() < best.backlog.Len() {
			best = sh
		}
	}
	return best
}

// shardDown kills a shard: every hosted job's attempt is aborted (stale
// events invalidated via the attempt counter) and re-dispatched to the
// survivors against the retry budget, the backlog re-routes for free (those
// jobs never left the router tier), and hash ownership shrinks to the up
// members with bounded key movement.
func (s *sim) shardDown(sh *simShard) {
	if !sh.up {
		return
	}
	sh.up = false
	s.logShard(evShardDown, sh.idx)
	hosted := sh.hosted
	sh.hosted = nil
	sh.qpuFIFO = nil
	sh.devFree = sh.devFree[:0]
	sh.freeHosts = 0
	for _, h := range hosted {
		s.hostBusy += s.now - h.start
		if h.dev >= 0 {
			s.qpuBusy += s.now - h.qpuGrant
			sh.devHolder[h.dev] = nil
			h.dev = -1
		}
		h.attempt++
		s.log(evAbort, h)
		if h.retries >= s.retryLimit {
			s.failJob(h, nil)
		} else {
			h.retries++
			s.retries++
			s.push(s.now+s.backoff, evRoute, h)
		}
	}
	// The backlog never reached a host: re-dispatch immediately, no retry
	// consumed — the router still holds these jobs in its own queue.
	for {
		jb, ok := sh.backlog.Pop()
		if !ok {
			break
		}
		s.routeJob(jb)
	}
}

// shardUp rejoins a dead shard: full host capacity, every up device free,
// and any jobs parked while the whole cluster was down re-route. A shard
// drained while it was dead stays out of the ring — revival restores fault
// state, not membership.
func (s *sim) shardUp(sh *simShard) {
	if sh.up {
		return
	}
	sh.up = true
	s.logShard(evShardUp, sh.idx)
	if !sh.present {
		return
	}
	sh.freeHosts = s.sys.Hosts
	sh.devFree = sh.devFree[:0]
	for d, up := range sh.devUp {
		if up {
			sh.devFree = append(sh.devFree, d)
		}
	}
	pending := s.pending
	s.pending = nil
	for _, jb := range pending {
		s.routeJob(jb)
	}
}

// join realizes a scheduled membership join: the slot's hosts come online,
// its live devices enter the free pool, and hash ownership expands to the
// new member set — only the ring-diff key ranges change owner, everything
// else stays put.
func (s *sim) join(sh *simShard) {
	if sh.present {
		return
	}
	sh.present = true
	s.logShard(evJoin, sh.idx)
	if !sh.up {
		return
	}
	sh.freeHosts = s.sys.Hosts
	sh.devFree = sh.devFree[:0]
	for d, up := range sh.devUp {
		if up {
			sh.devFree = append(sh.devFree, d)
		}
	}
	pending := s.pending
	s.pending = nil
	for _, jb := range pending {
		s.routeJob(jb)
	}
}

// drainShard realizes a planned drain: the shard leaves the ring, its
// queued backlog re-routes to the survivors for free (those jobs never left
// the router tier), and hosted jobs complete in place — the graceful
// counterpart to shardDown's crash semantics.
func (s *sim) drainShard(sh *simShard) {
	if !sh.present {
		return
	}
	sh.present = false
	s.logShard(evDrain, sh.idx)
	for {
		jb, ok := sh.backlog.Pop()
		if !ok {
			break
		}
		s.routeJob(jb)
	}
}

// startJob begins host service for j at the current time: the host is held
// until evDone. The QPU request lands after pre-process + request network.
func (s *sim) startJob(sh *simShard, j *job) {
	j.shard = sh.idx
	j.start = s.now
	sh.hosted = append(sh.hosted, j)
	s.log(evStart, j)
	s.push(s.now+j.profile.PreProcess+j.profile.Network, evGrant, j)
}

// tryGrant gives j the next free device, or parks it in the FIFO.
func (s *sim) tryGrant(sh *simShard, j *job) {
	if len(sh.devFree) > 0 {
		dev := sh.devFree[0]
		sh.devFree = sh.devFree[1:]
		s.assign(sh, j, dev)
	} else {
		sh.qpuFIFO = append(sh.qpuFIFO, j)
	}
}

// assign grants device dev to j now and schedules the release.
func (s *sim) assign(sh *simShard, j *job, dev int) {
	j.dev = dev
	sh.devHolder[dev] = j
	j.qpuGrant = s.now
	j.qpuWaitAcc += s.now - j.reqAt
	s.log(evGrant, j)
	s.push(s.now+j.profile.QPUService, evRelease, j)
}

// serveOrFree hands an available device to the FIFO head, or parks it in
// the free list.
func (s *sim) serveOrFree(sh *simShard, dev int) {
	if len(sh.qpuFIFO) > 0 {
		next := sh.qpuFIFO[0]
		sh.qpuFIFO = sh.qpuFIFO[1:]
		s.assign(sh, next, dev)
	} else {
		sh.devFree = append(sh.devFree, dev)
	}
}

// removeFree pulls a dead device out of the free list.
func (sh *simShard) removeFree(dev int) {
	for i, d := range sh.devFree {
		if d == dev {
			sh.devFree = append(sh.devFree[:i], sh.devFree[i+1:]...)
			return
		}
	}
}

// removeHosted drops j from the hosted list, preserving pickup order.
func (sh *simShard) removeHosted(j *job) {
	for i, h := range sh.hosted {
		if h == j {
			sh.hosted = append(sh.hosted[:i], sh.hosted[i+1:]...)
			return
		}
	}
}

// failJob records a job lost to the fault regime. sh, when non-nil, is the
// live shard whose host was carrying the job (retry exhaustion): the host
// frees and takes the next backlog entry. Shard-loss and fatal-drop
// failures pass nil — there is no host to free. Closed-loop clients
// resubmit after their think time either way — a failed request does not
// shrink the client population.
func (s *sim) failJob(j *job, sh *simShard) {
	s.log(evFail, j)
	s.failed++
	s.live--
	if sh != nil {
		sh.removeHosted(j)
		if next, ok := sh.backlog.Pop(); ok {
			s.startJob(sh, next)
		} else {
			sh.freeHosts++
		}
	}
	if j.client >= 0 {
		s.admitLocked(s.now+s.sc.Arrival.Think.D(), j.client)
	}
}

func (s *sim) complete(j *job) {
	s.live--
	s.queueWait = append(s.queueWait, j.start-j.submitAt)
	s.qpuWait = append(s.qpuWait, j.qpuWaitAcc)
	s.sojourn = append(s.sojourn, j.done-j.arrive)
	if s.classSojourn == nil {
		s.classSojourn = make([][]time.Duration, len(s.sc.Mix))
	}
	s.classSojourn[j.class] = append(s.classSojourn[j.class], j.done-j.arrive)
	if s.cluster {
		if s.shardSojourn == nil {
			s.shardSojourn = make([][]time.Duration, len(s.shards))
			s.shardClass = make([][][]time.Duration, len(s.shards))
			for x := range s.shardClass {
				s.shardClass[x] = make([][]time.Duration, len(s.sc.Mix))
			}
		}
		s.shardSojourn[j.shard] = append(s.shardSojourn[j.shard], j.done-j.arrive)
		s.shardClass[j.shard][j.class] = append(s.shardClass[j.shard][j.class], j.done-j.arrive)
	}
	s.hostBusy += j.done - j.start
	if j.done > s.end {
		s.end = j.done
	}
}

func (s *sim) result() *Result {
	r := &Result{
		Scenario:  s.sc.Name,
		Jobs:      len(s.sojourn),
		End:       s.end,
		QueueWait: stats.SummarizeDurations(s.queueWait),
		QPUWait:   stats.SummarizeDurations(s.qpuWait),
		Sojourn:   stats.SummarizeDurations(s.sojourn),
	}
	if len(s.sc.Mix) > 1 {
		r.ClassSojourn = make([]stats.DurationSummary, len(s.sc.Mix))
		for c, ds := range s.classSojourn {
			r.ClassSojourn[c] = stats.SummarizeDurations(ds)
		}
	}
	if s.cluster {
		r.Shards = make([]ShardStats, len(s.shards))
		for x := range s.shards {
			var st ShardStats
			if s.shardSojourn != nil {
				st.Jobs = len(s.shardSojourn[x])
				st.Sojourn = stats.SummarizeDurations(s.shardSojourn[x])
				if len(s.sc.Mix) > 1 {
					st.ClassSojourn = make([]stats.DurationSummary, len(s.sc.Mix))
					for c, ds := range s.shardClass[x] {
						st.ClassSojourn[c] = stats.SummarizeDurations(ds)
					}
				}
			}
			r.Shards[x] = st
		}
	}
	r.Admitted = s.nextID
	r.Failed = s.failed
	r.Retries = s.retries
	r.Drops = s.drops
	r.DeviceDown = s.deviceDown
	if s.end > 0 {
		hosts := float64(s.sys.Hosts * len(s.shards))
		devs := float64(s.sc.System.QPUs() * len(s.shards))
		r.Throughput = float64(r.Jobs) / s.end.Seconds()
		r.HostBusy = float64(s.hostBusy) / (float64(s.end) * hosts)
		r.QPUBusy = float64(s.qpuBusy) / (float64(s.end) * devs)
	}
	return r
}

// String renders the result in the fixed format the determinism regression
// byte-compares; the fault line appears only when the run realized faults,
// so fault-free renderings are byte-identical to the historical format.
func (r *Result) String() string {
	out := fmt.Sprintf("scenario=%q jobs=%d end=%v throughput=%.4f\n  queueWait %v\n  qpuWait   %v\n  sojourn   %v\n  hostBusy=%.4f qpuBusy=%.4f",
		r.Scenario, r.Jobs, r.End, r.Throughput, r.QueueWait, r.QPUWait, r.Sojourn, r.HostBusy, r.QPUBusy)
	if r.Failed > 0 || r.Retries > 0 || r.Drops > 0 || r.DeviceDown > 0 {
		out += fmt.Sprintf("\n  failed=%d retries=%d drops=%d deviceDown=%v", r.Failed, r.Retries, r.Drops, r.DeviceDown)
	}
	return out
}
