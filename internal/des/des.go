// Package des is the open-system discrete-event simulator of the workload
// engine: it runs a workload.Scenario against any of the paper's Fig. 1
// architectures in virtual time — no wall-clock sleeping — and reports the
// response-time distributions (queue wait, QPU wait, sojourn) that the
// closed-batch makespan models of internal/arch cannot answer.
//
// The simulated discipline mirrors the live dispatch service exactly: a job
// arrives, waits in a backlog ordered by the scenario's scheduling policy
// (internal/sched: FIFO, priority, shortest-expected-QPU-first or weighted
// fair share) for a free host worker, then the host carries it end to end —
// pre-process, request network, queue for a QPU service token, serialized
// QPU service, response network, post-process — and only then takes the
// next job. Shared-resource systems have one QPU token for all hosts;
// dedicated systems give every host its own, so a held job's QPU is free by
// construction. The QPU token queue itself stays FIFO under every policy,
// matching the live fleet's channel semantics.
//
// Costs are O(events · log events) on a binary heap keyed by (time, push
// sequence), so identical scenarios replay byte-identical event logs at any
// GOMAXPROCS — millions of simulated arrivals take milliseconds, against
// the hours a live replay would need. Analytic (analytic.go) supplies the
// M/M/c cross-check for the exponential single-class case, validating the
// simulator against queueing theory.
package des

import (
	"container/heap"
	"fmt"
	"io"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/stats"
	"github.com/splitexec/splitexec/internal/workload"
)

// Options configure a simulation run.
type Options struct {
	// EventLog, when non-nil, receives one line per simulator event
	// (times in virtual nanoseconds). Identical scenario + seed produce
	// byte-identical logs — the determinism regression anchor.
	EventLog io.Writer
}

// Result aggregates one simulated scenario run.
type Result struct {
	Scenario string `json:"scenario,omitempty"`
	// Jobs is the number of completed (= admitted) jobs.
	Jobs int `json:"jobs"`
	// End is the virtual completion time of the last job; Throughput is
	// Jobs over End in jobs/second.
	End        time.Duration `json:"end"`
	Throughput float64       `json:"throughput"`

	// QueueWait is arrival→host pickup, QPUWait the wait for a service
	// token, Sojourn arrival→completion — the open-system latency triple.
	QueueWait stats.DurationSummary `json:"queueWait"`
	QPUWait   stats.DurationSummary `json:"qpuWait"`
	Sojourn   stats.DurationSummary `json:"sojourn"`

	// ClassSojourn breaks the sojourn distribution down per mix class —
	// the view that makes scheduling policies legible: priority shifts
	// latency between classes, fair share apportions it by weight.
	ClassSojourn []stats.DurationSummary `json:"classSojourn,omitempty"`

	// HostBusy and QPUBusy are utilization fractions: cumulative busy
	// time over capacity × End.
	HostBusy float64 `json:"hostBusy"`
	QPUBusy  float64 `json:"qpuBusy"`
}

// event kinds, in the order they appear in event logs.
const (
	evArrive  = iota // job enters the system
	evStart          // a host picks the job up
	evGrant          // the job acquires a QPU service token
	evRelease        // the job releases its token
	evDone           // the job completes; its host frees
)

var evName = [...]string{"arrive", "start", "qpu+", "qpu-", "done"}

// event is one heap entry. Ties on time break on push sequence, so the
// replay order — and therefore the event log — is fully deterministic.
type event struct {
	at   time.Duration
	seq  int
	kind int
	job  *job
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// job carries one arrival through the pipeline.
type job struct {
	id      int
	class   int
	profile arch.JobProfile

	arrive   time.Duration
	start    time.Duration // host pickup
	qpuGrant time.Duration
	done     time.Duration

	client int // closed-loop submitter, else -1
}

// sim is the mutable simulation state.
type sim struct {
	sc   *workload.Scenario
	sys  arch.System
	opts Options

	heap eventHeap
	free []*event // recycled heap entries: four events per job add up at 1e6 jobs
	seq  int
	now  time.Duration

	freeHosts int
	// backlog holds jobs waiting for a host, ordered by the scenario's
	// scheduling policy (sched.New is deterministic, so event logs stay
	// byte-identical under every policy).
	backlog sched.Queue[*job]

	freeQPUs int
	qpuFIFO  []*job // jobs waiting for a service token (shared systems)

	dedicated bool

	// admission
	nextID    int
	arrivals  *workload.ArrivalGen
	jobLimit  int           // max admitted jobs (0 = unbounded)
	timeLimit time.Duration // no admissions after this offset (0 = unbounded)

	// accounting
	queueWait    []time.Duration
	qpuWait      []time.Duration
	sojourn      []time.Duration
	classSojourn [][]time.Duration // indexed by mix class
	hostBusy     time.Duration
	qpuBusy      time.Duration
	end          time.Duration
}

// Simulate runs the scenario to completion — every admitted job finishes —
// and returns the aggregate result.
func Simulate(sc *workload.Scenario, opts Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sys, err := sc.System.Arch()
	if err != nil {
		return nil, err
	}
	s := &sim{
		sc:        sc,
		sys:       sys,
		opts:      opts,
		freeHosts: sys.Hosts,
		backlog:   sched.New[*job](sc.Policy),
		dedicated: sys.Kind == arch.DedicatedPerNode,
		jobLimit:  sc.Horizon.Jobs,
		timeLimit: sc.Horizon.Duration.D(),
	}
	if !s.dedicated {
		s.freeQPUs = 1
	}
	if err := s.prime(); err != nil {
		return nil, err
	}
	for !s.heap.empty() {
		e := heap.Pop(&s.heap).(*event)
		s.now = e.at
		s.dispatch(e)
		e.job = nil
		s.free = append(s.free, e)
	}
	return s.result(), nil
}

// prime seeds the heap with the first arrivals.
func (s *sim) prime() error {
	if s.sc.Arrival.Kind == workload.ClosedLoop {
		// Every client submits its first job at t=0, in client order.
		for c := 0; c < s.sc.Arrival.Clients; c++ {
			if !s.admitLocked(0, c) {
				break
			}
		}
		return nil
	}
	gen, err := s.sc.Arrivals()
	if err != nil {
		return err
	}
	s.arrivals = gen
	s.scheduleNextArrival()
	return nil
}

// scheduleNextArrival admits the next open-process arrival, if the horizon
// allows one.
func (s *sim) scheduleNextArrival() {
	if s.arrivals == nil {
		return
	}
	if s.jobLimit > 0 && s.nextID >= s.jobLimit {
		return
	}
	off, ok := s.arrivals.Next()
	if !ok {
		return
	}
	if s.jobLimit == 0 && s.timeLimit > 0 && off > s.timeLimit {
		return
	}
	s.admitLocked(off, -1)
}

// admitLocked creates job nextID arriving at off and schedules its arrival
// event. It reports whether the horizon admitted the job.
func (s *sim) admitLocked(off time.Duration, client int) bool {
	if s.jobLimit > 0 && s.nextID >= s.jobLimit {
		return false
	}
	if s.timeLimit > 0 && off > s.timeLimit {
		return false
	}
	sample := s.sc.JobAt(s.nextID)
	j := &job{
		id:      s.nextID,
		class:   sample.Class,
		profile: sample.Profile,
		arrive:  off,
		client:  client,
	}
	s.nextID++
	s.push(off, evArrive, j)
	return true
}

func (s *sim) push(at time.Duration, kind int, j *job) {
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e, s.free = s.free[n-1], s.free[:n-1]
		*e = event{at: at, seq: s.seq, kind: kind, job: j}
	} else {
		e = &event{at: at, seq: s.seq, kind: kind, job: j}
	}
	heap.Push(&s.heap, e)
}

func (s *sim) log(kind int, j *job) {
	if s.opts.EventLog == nil {
		return
	}
	fmt.Fprintf(s.opts.EventLog, "%d %s job=%d class=%d\n", s.now, evName[kind], j.id, j.class)
}

func (s *sim) dispatch(e *event) {
	j := e.job
	switch e.kind {
	case evArrive:
		s.log(evArrive, j)
		if s.freeHosts > 0 {
			s.freeHosts--
			s.startJob(j)
		} else {
			s.backlog.Push(j, s.sc.SchedJob(workload.Job{Class: j.class, Profile: j.profile}))
		}
		// Keep exactly one pending open-process arrival in the heap.
		if j.client < 0 {
			s.scheduleNextArrival()
		}

	case evStart:
		// evStart events are synthesized inline by startJob; never queued.

	case evGrant:
		// The job reached its QPU-request point (pre-process + request
		// network done). Dedicated hosts own their token; shared systems
		// grant the single token FIFO.
		if s.dedicated || s.freeQPUs > 0 {
			if !s.dedicated {
				s.freeQPUs--
			}
			s.grantQPU(j)
		} else {
			s.qpuFIFO = append(s.qpuFIFO, j)
		}

	case evRelease:
		s.log(evRelease, j)
		s.qpuBusy += j.profile.QPUService
		// Completion: response network + post-process.
		s.push(s.now+j.profile.Network+j.profile.PostProcess, evDone, j)
		if !s.dedicated {
			if len(s.qpuFIFO) > 0 {
				next := s.qpuFIFO[0]
				s.qpuFIFO = s.qpuFIFO[1:]
				s.grantQPU(next)
			} else {
				s.freeQPUs++
			}
		}

	case evDone:
		s.log(evDone, j)
		j.done = s.now
		s.complete(j)
		if next, ok := s.backlog.Pop(); ok {
			s.startJob(next)
		} else {
			s.freeHosts++
		}
		// Closed loop: the client thinks, then submits its next job.
		if j.client >= 0 {
			s.admitLocked(s.now+s.sc.Arrival.Think.D(), j.client)
		}
	}
}

// startJob begins host service for j at the current time: the host is held
// until evDone. The QPU request lands after pre-process + request network.
func (s *sim) startJob(j *job) {
	j.start = s.now
	s.log(evStart, j)
	s.push(s.now+j.profile.PreProcess+j.profile.Network, evGrant, j)
}

// grantQPU gives j its service token now and schedules the release.
func (s *sim) grantQPU(j *job) {
	j.qpuGrant = s.now
	s.log(evGrant, j)
	s.push(s.now+j.profile.QPUService, evRelease, j)
}

func (s *sim) complete(j *job) {
	s.queueWait = append(s.queueWait, j.start-j.arrive)
	reqAt := j.start + j.profile.PreProcess + j.profile.Network
	s.qpuWait = append(s.qpuWait, j.qpuGrant-reqAt)
	s.sojourn = append(s.sojourn, j.done-j.arrive)
	if s.classSojourn == nil {
		s.classSojourn = make([][]time.Duration, len(s.sc.Mix))
	}
	s.classSojourn[j.class] = append(s.classSojourn[j.class], j.done-j.arrive)
	s.hostBusy += j.done - j.start
	if j.done > s.end {
		s.end = j.done
	}
}

func (s *sim) result() *Result {
	r := &Result{
		Scenario:  s.sc.Name,
		Jobs:      len(s.sojourn),
		End:       s.end,
		QueueWait: stats.SummarizeDurations(s.queueWait),
		QPUWait:   stats.SummarizeDurations(s.qpuWait),
		Sojourn:   stats.SummarizeDurations(s.sojourn),
	}
	if len(s.sc.Mix) > 1 {
		r.ClassSojourn = make([]stats.DurationSummary, len(s.sc.Mix))
		for c, ds := range s.classSojourn {
			r.ClassSojourn[c] = stats.SummarizeDurations(ds)
		}
	}
	if s.end > 0 {
		r.Throughput = float64(r.Jobs) / s.end.Seconds()
		r.HostBusy = float64(s.hostBusy) / (float64(s.end) * float64(s.sys.Hosts))
		qpus := s.sys.Hosts
		if !s.dedicated {
			qpus = 1
		}
		r.QPUBusy = float64(s.qpuBusy) / (float64(s.end) * float64(qpus))
	}
	return r
}

// String renders the result in the fixed format the determinism regression
// byte-compares.
func (r *Result) String() string {
	return fmt.Sprintf("scenario=%q jobs=%d end=%v throughput=%.4f\n  queueWait %v\n  qpuWait   %v\n  sojourn   %v\n  hostBusy=%.4f qpuBusy=%.4f",
		r.Scenario, r.Jobs, r.End, r.Throughput, r.QueueWait, r.QPUWait, r.Sojourn, r.HostBusy, r.QPUBusy)
}
