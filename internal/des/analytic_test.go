package des

import (
	"math"
	"testing"
)

// erlangCRef is an independent oracle for the Erlang-C probability,
// evaluated in log space with the direct definition:
//
//	C = T / (S + T),  S = Σ_{k<c} a^k/k!,  T = (a^c/c!)·1/(1-ρ)
//
// A naive float64 evaluation of these terms overflows around c ≳ 170
// (171! > MaxFloat64) — exactly the failure mode the production recurrence
// must avoid — so the oracle works with logarithms throughout.
func erlangCRef(a float64, c int) float64 {
	lga := math.Log(a)
	logTerm := func(k int) float64 {
		lg, _ := math.Lgamma(float64(k + 1))
		return float64(k)*lga - lg
	}
	// log-sum-exp over the partial sum S.
	maxLog := math.Inf(-1)
	for k := 0; k < c; k++ {
		if lt := logTerm(k); lt > maxLog {
			maxLog = lt
		}
	}
	sum := 0.0
	for k := 0; k < c; k++ {
		sum += math.Exp(logTerm(k) - maxLog)
	}
	logS := maxLog + math.Log(sum)
	rho := a / float64(c)
	logT := logTerm(c) - math.Log(1-rho)
	return 1 / (1 + math.Exp(logS-logT))
}

// TestAnalyticLargeC pins the Erlang-B recurrence against the log-space
// oracle at server counts where factorial-style accumulation overflows
// (171! exceeds MaxFloat64): c ∈ {64, 256} across utilizations. This is the
// regression the planner depends on — capacity sweeps routinely cross
// c > 170.
func TestAnalyticLargeC(t *testing.T) {
	const mu = 1000.0
	for _, c := range []int{64, 256} {
		var lastWq float64
		for _, rho := range []float64{0.5, 0.8, 0.95} {
			lambda := rho * float64(c) * mu
			r, err := Analytic(lambda, mu, c)
			if err != nil {
				t.Fatalf("c=%d rho=%.2f: %v", c, rho, err)
			}
			want := erlangCRef(lambda/mu, c)
			if math.IsNaN(r.ErlangC) || math.IsInf(r.ErlangC, 0) {
				t.Fatalf("c=%d rho=%.2f: ErlangC = %v (overflow/underflow)", c, rho, r.ErlangC)
			}
			if r.ErlangC <= 0 || r.ErlangC >= 1 {
				t.Errorf("c=%d rho=%.2f: ErlangC = %v outside (0,1)", c, rho, r.ErlangC)
			}
			if rel := math.Abs(r.ErlangC-want) / want; rel > 1e-10 {
				t.Errorf("c=%d rho=%.2f: ErlangC = %.15g, oracle %.15g (rel err %.2e)",
					c, rho, r.ErlangC, want, rel)
			}
			wq := r.QueueWaitMean.Seconds()
			if wq < 0 || r.SojournMean.Seconds() < 1/mu {
				t.Errorf("c=%d rho=%.2f: Wq=%v W=%v inconsistent", c, rho, r.QueueWaitMean, r.SojournMean)
			}
			if wq < lastWq {
				t.Errorf("c=%d: Wq fell from %v to %v as rho rose", c, lastWq, wq)
			}
			lastWq = wq
			// Little's law ties the mean queue length to Wq.
			if math.Abs(r.QueueLenMean-lambda*wq) > lambda*1e-9 {
				t.Errorf("c=%d rho=%.2f: Lq=%v vs lambda*Wq=%v", c, rho, r.QueueLenMean, lambda*wq)
			}
		}
	}
}

// TestAnalyticLargeCKnownValue pins one hand-checkable large-c point: at
// very low utilization an arriving job almost never finds all 256 servers
// busy, so ErlangC must be vanishingly small yet still positive — a regime
// where an overflowing implementation returns NaN or 0.
func TestAnalyticLargeCKnownValue(t *testing.T) {
	r, err := Analytic(0.2*256*1000, 1000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.ErlangC <= 0 || r.ErlangC > 1e-40 {
		t.Errorf("c=256 rho=0.2: ErlangC = %g, want tiny but positive", r.ErlangC)
	}
}
