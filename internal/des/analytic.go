package des

import (
	"fmt"
	"math"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

// AnalyticResult is the M/M/c steady-state prediction for an open system:
// Poisson arrivals at Lambda jobs/second, exponential service at Mu
// jobs/second per server, c identical servers.
type AnalyticResult struct {
	Servers int     `json:"servers"`
	Lambda  float64 `json:"lambda"` // arrival rate, jobs/s
	Mu      float64 `json:"mu"`     // per-server service rate, jobs/s
	Rho     float64 `json:"rho"`    // utilization λ/(c·μ)

	// ErlangC is the probability an arriving job queues (all servers
	// busy); QueueLenMean the mean number of queued jobs (Lq).
	ErlangC      float64 `json:"erlangC"`
	QueueLenMean float64 `json:"queueLenMean"`

	// QueueWaitMean is Wq, SojournMean W = Wq + 1/μ.
	QueueWaitMean time.Duration `json:"queueWaitMean"`
	SojournMean   time.Duration `json:"sojournMean"`
}

// Analytic evaluates the M/M/c formulas. It requires λ > 0, μ > 0, c >= 1
// and stability ρ = λ/(c·μ) < 1 — as ρ → 1 the predicted waits grow
// without bound, the tail behavior the simulator must reproduce.
func Analytic(lambda, mu float64, c int) (AnalyticResult, error) {
	r := AnalyticResult{Servers: c, Lambda: lambda, Mu: mu}
	if c < 1 {
		return r, fmt.Errorf("des: M/M/c needs c >= 1, got %d", c)
	}
	if !(lambda > 0) || !(mu > 0) {
		return r, fmt.Errorf("des: M/M/c needs positive rates, got lambda=%v mu=%v", lambda, mu)
	}
	a := lambda / mu // offered load in Erlangs
	r.Rho = a / float64(c)
	if r.Rho >= 1 {
		return r, fmt.Errorf("des: unstable system: rho = %.3f >= 1 (lambda=%v, c*mu=%v)",
			r.Rho, lambda, float64(c)*mu)
	}
	// Erlang C via the numerically stable recurrence on the Erlang B
	// blocking probability: B(0)=1, B(k) = a·B(k-1)/(k + a·B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	r.ErlangC = b / (1 - r.Rho*(1-b))
	wq := r.ErlangC / (float64(c)*mu - lambda) // seconds
	r.QueueLenMean = lambda * wq
	r.QueueWaitMean = time.Duration(wq * float64(time.Second))
	r.SojournMean = time.Duration((wq + 1/mu) * float64(time.Second))
	return r, nil
}

// AnalyticScenario maps a scenario onto the M/M/c model, when one applies:
// Poisson arrivals, a single job class with exponential service, and a
// deployment whose hosts never contend for a QPU (dedicated per node, or a
// single host) — then c = Hosts, λ = the arrival rate, and 1/μ = the
// class's unqueued total (hosts hold their job end to end, exactly the
// discipline of the simulator and the live service). Scenarios outside
// that envelope get an error naming the first assumption they break.
func AnalyticScenario(sc *workload.Scenario) (AnalyticResult, error) {
	if err := sc.Validate(); err != nil {
		return AnalyticResult{}, err
	}
	if sc.Arrival.Kind != workload.Poisson {
		return AnalyticResult{}, fmt.Errorf("des: M/M/c cross-check needs poisson arrivals, scenario has %q", sc.Arrival.Kind)
	}
	if len(sc.Mix) != 1 {
		return AnalyticResult{}, fmt.Errorf("des: M/M/c cross-check needs a single job class, scenario has %d", len(sc.Mix))
	}
	if sc.Mix[0].Dist != workload.Exponential {
		return AnalyticResult{}, fmt.Errorf("des: M/M/c cross-check needs dist %q, class %q has %q",
			workload.Exponential, sc.Mix[0].Name, sc.Mix[0].Dist)
	}
	if sc.System.Kind != "dedicated" && sc.System.Hosts != 1 {
		return AnalyticResult{}, fmt.Errorf("des: M/M/c cross-check needs an uncontended QPU (dedicated system or one host), scenario is %q with %d hosts",
			sc.System.Kind, sc.System.Hosts)
	}
	mean := sc.Mix[0].Profile.Arch().Total().Seconds()
	if !(mean > 0) || math.IsInf(mean, 0) {
		return AnalyticResult{}, fmt.Errorf("des: degenerate mean service time %v", mean)
	}
	return Analytic(sc.Arrival.Rate, 1/mean, sc.System.Hosts)
}
