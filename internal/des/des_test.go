package des

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

// mmcScenario builds the single-class exponential scenario the M/M/c
// cross-check applies to: Poisson arrivals at utilization rho over c
// dedicated hosts whose mean service time is 1ms (mu = 1000 jobs/s).
func mmcScenario(rho float64, c, jobs int, seed int64) *workload.Scenario {
	const mu = 1000.0
	return &workload.Scenario{
		Name:    fmt.Sprintf("mmc rho=%.1f c=%d", rho, c),
		Seed:    seed,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: rho * float64(c) * mu},
		Mix: []workload.JobClass{{
			Name: "exp", Weight: 1, Dist: workload.Exponential,
			Profile: workload.Profile{
				PreProcess:  workload.Duration(500 * time.Microsecond),
				QPUService:  workload.Duration(300 * time.Microsecond),
				PostProcess: workload.Duration(200 * time.Microsecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: c},
		Horizon: workload.Horizon{Jobs: jobs},
	}
}

func TestAnalyticMM1ClosedForm(t *testing.T) {
	// M/M/1: ErlangC = rho, Wq = rho/(mu-lambda), W = 1/(mu-lambda).
	lambda, mu := 600.0, 1000.0
	r, err := Analytic(lambda, mu, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Rho-0.6) > 1e-12 || math.Abs(r.ErlangC-0.6) > 1e-12 {
		t.Errorf("rho=%v erlangC=%v, want 0.6, 0.6", r.Rho, r.ErlangC)
	}
	wantW := time.Duration(float64(time.Second) / (mu - lambda))
	if d := r.SojournMean - wantW; d < -time.Nanosecond || d > time.Nanosecond {
		t.Errorf("W = %v, want %v", r.SojournMean, wantW)
	}
	// QueueWaitMean is truncated to nanoseconds, so allow lambda·1ns slack.
	if math.Abs(r.QueueLenMean-lambda*r.QueueWaitMean.Seconds()) > lambda*1e-9 {
		t.Errorf("Little's law broken: Lq=%v, lambda*Wq=%v", r.QueueLenMean, lambda*r.QueueWaitMean.Seconds())
	}
}

func TestAnalyticMM2ClosedForm(t *testing.T) {
	// M/M/2 with a = 1 (rho = 0.5): C = a^2/(a^2 + 2(1-rho)(1+a)) ... the
	// textbook value is ErlangC = 1/3.
	r, err := Analytic(1000, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ErlangC-1.0/3) > 1e-12 {
		t.Errorf("M/M/2 ErlangC = %v, want 1/3", r.ErlangC)
	}
}

func TestAnalyticRejects(t *testing.T) {
	if _, err := Analytic(1000, 1000, 1); err == nil || !strings.Contains(err.Error(), "unstable") {
		t.Errorf("rho=1 accepted: %v", err)
	}
	if _, err := Analytic(-1, 1000, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := Analytic(1, 1000, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestAnalyticScenarioEnvelope(t *testing.T) {
	sc := mmcScenario(0.5, 2, 1000, 1)
	r, err := AnalyticScenario(sc)
	if err != nil {
		t.Fatalf("AnalyticScenario: %v", err)
	}
	if r.Servers != 2 || math.Abs(r.Rho-0.5) > 1e-12 {
		t.Errorf("scenario mapping: %+v", r)
	}
	for _, mut := range []struct {
		name string
		f    func(*workload.Scenario)
		want string
	}{
		{"uniform arrivals", func(s *workload.Scenario) { s.Arrival.Kind = workload.Uniform }, "poisson"},
		{"two classes", func(s *workload.Scenario) { s.Mix = append(s.Mix, s.Mix[0]) }, "single job class"},
		{"det service", func(s *workload.Scenario) { s.Mix[0].Dist = "" }, "dist"},
		{"shared hosts", func(s *workload.Scenario) { s.System.Kind = "shared"; s.System.Hosts = 4 }, "uncontended"},
	} {
		s := mmcScenario(0.5, 2, 1000, 1)
		mut.f(s)
		if _, err := AnalyticScenario(s); err == nil || !strings.Contains(err.Error(), mut.want) {
			t.Errorf("%s: err = %v, want mention of %q", mut.name, err, mut.want)
		}
	}
}

// TestSimulatorMatchesAnalytic is the acceptance gate: across utilizations
// and server counts, the simulated mean sojourn of >= 1e5 exponential jobs
// must land within 5% of the M/M/c prediction — and the tail must grow as
// rho -> 1 exactly as queueing theory says it does.
func TestSimulatorMatchesAnalytic(t *testing.T) {
	var lastP99 time.Duration
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		for _, c := range []int{1, 4} {
			jobs := 100_000
			if rho >= 0.9 {
				// High-rho sojourns autocorrelate over long stretches;
				// more samples keep the estimator inside the 5% gate.
				jobs = 400_000
			}
			sc := mmcScenario(rho, c, jobs, 1)
			pred, err := AnalyticScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Jobs != jobs {
				t.Fatalf("rho=%.1f c=%d: %d completed, want %d", rho, c, got.Jobs, jobs)
			}
			ratio := float64(got.Sojourn.Mean) / float64(pred.SojournMean)
			t.Logf("rho=%.1f c=%d: simulated W %v vs M/M/c %v (ratio %.4f), p99 %v",
				rho, c, got.Sojourn.Mean, pred.SojournMean, ratio, got.Sojourn.P99)
			if ratio < 0.95 || ratio > 1.05 {
				t.Errorf("rho=%.1f c=%d: simulated mean sojourn %v off M/M/c %v by %.1f%%",
					rho, c, got.Sojourn.Mean, pred.SojournMean, 100*(ratio-1))
			}
			// Dedicated QPUs can never be contended.
			if got.QPUWait.Max != 0 {
				t.Errorf("rho=%.1f c=%d: dedicated system measured QPU wait %v", rho, c, got.QPUWait.Max)
			}
			// Host utilization should track rho.
			if math.Abs(got.HostBusy-rho) > 0.05 {
				t.Errorf("rho=%.1f c=%d: host utilization %.3f", rho, c, got.HostBusy)
			}
			if c == 1 {
				if got.Sojourn.P99 <= lastP99 {
					t.Errorf("rho=%.1f: p99 %v did not grow from %v as rho increased",
						rho, got.Sojourn.P99, lastP99)
				}
				lastP99 = got.Sojourn.P99
			}
		}
	}
}

// TestSharedQPUContention: a QPU-bound mix on a shared-resource system must
// show token waits the dedicated deployment of the same scenario does not.
func TestSharedQPUContention(t *testing.T) {
	base := &workload.Scenario{
		Seed:    3,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 400},
		Mix: []workload.JobClass{{
			Name: "qpu-bound", Weight: 1,
			Profile: workload.Profile{
				PreProcess: workload.Duration(200 * time.Microsecond),
				QPUService: workload.Duration(2 * time.Millisecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "shared", Hosts: 4},
		Horizon: workload.Horizon{Jobs: 5000},
	}
	shared, err := Simulate(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ded := *base
	ded.System.Kind = "dedicated"
	dedicated, err := Simulate(&ded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if shared.QPUWait.Mean == 0 {
		t.Error("shared QPU-bound run simulated no token wait")
	}
	if dedicated.QPUWait.Max != 0 {
		t.Errorf("dedicated run simulated token wait %v", dedicated.QPUWait.Max)
	}
	if dedicated.Sojourn.Mean >= shared.Sojourn.Mean {
		t.Errorf("dedicated sojourn %v did not beat shared %v on a QPU-bound mix",
			dedicated.Sojourn.Mean, shared.Sojourn.Mean)
	}
	if shared.QPUBusy < 0.7 {
		t.Errorf("shared QPU utilization %.2f, want near saturation", shared.QPUBusy)
	}
}

// TestTraceHandChecked pins the exact event arithmetic on a scenario small
// enough to verify by hand: one host, two jobs, the second queuing behind
// the first.
func TestTraceHandChecked(t *testing.T) {
	sc := &workload.Scenario{
		Seed: 1,
		Arrival: workload.Arrival{Kind: workload.Trace, Trace: []workload.Duration{
			0, workload.Duration(time.Millisecond),
		}},
		Mix: []workload.JobClass{{
			Name: "fixed", Weight: 1,
			Profile: workload.Profile{
				PreProcess:  workload.Duration(2 * time.Millisecond),
				QPUService:  workload.Duration(time.Millisecond),
				PostProcess: workload.Duration(time.Millisecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "shared", Hosts: 1},
		Horizon: workload.Horizon{Jobs: 2},
	}
	var log bytes.Buffer
	r, err := Simulate(sc, Options{EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0: arrive 0, start 0, QPU 2..3ms, done 4ms.
	// Job 1: arrive 1ms, start 4ms, QPU 6..7ms, done 8ms.
	if r.Jobs != 2 || r.End != 8*time.Millisecond {
		t.Fatalf("jobs=%d end=%v, want 2, 8ms", r.Jobs, r.End)
	}
	if r.Sojourn.Max != 7*time.Millisecond || r.Sojourn.Mean != 5500*time.Microsecond {
		t.Errorf("sojourn %v, want max 7ms mean 5.5ms", r.Sojourn)
	}
	if r.QueueWait.Max != 3*time.Millisecond {
		t.Errorf("queue wait max %v, want 3ms", r.QueueWait.Max)
	}
	if r.QPUWait.Max != 0 {
		t.Errorf("QPU wait %v, want 0", r.QPUWait.Max)
	}
	want := "" +
		"0 arrive job=0 class=0\n" +
		"0 start job=0 class=0\n" +
		"1000000 arrive job=1 class=0\n" +
		"2000000 qpu+ job=0 class=0\n" +
		"3000000 qpu- job=0 class=0\n" +
		"4000000 done job=0 class=0\n" +
		"4000000 start job=1 class=0\n" +
		"6000000 qpu+ job=1 class=0\n" +
		"7000000 qpu- job=1 class=0\n" +
		"8000000 done job=1 class=0\n"
	if log.String() != want {
		t.Errorf("event log:\n%s\nwant:\n%s", log.String(), want)
	}
}

// TestClosedLoop: C clients with zero think time keep min(C, hosts) hosts
// saturated; the horizon bounds total submissions exactly.
func TestClosedLoop(t *testing.T) {
	sc := &workload.Scenario{
		Seed:    5,
		Arrival: workload.Arrival{Kind: workload.ClosedLoop, Clients: 4},
		Mix: []workload.JobClass{{
			Name: "fixed", Weight: 1,
			Profile: workload.Profile{
				PreProcess: workload.Duration(time.Millisecond),
				QPUService: workload.Duration(time.Millisecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: 2},
		Horizon: workload.Horizon{Jobs: 100},
	}
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 100 {
		t.Fatalf("completed %d jobs, want 100", r.Jobs)
	}
	// 4 clients over 2 hosts, zero think: hosts never idle after warmup.
	if r.HostBusy < 0.99 {
		t.Errorf("host utilization %.3f, want ~1 for a saturated closed loop", r.HostBusy)
	}
	// 100 jobs of 2ms over 2 hosts = 100ms end-to-end.
	if r.End != 100*time.Millisecond {
		t.Errorf("end %v, want 100ms", r.End)
	}
}

// TestDurationHorizon: a duration horizon admits exactly the arrivals
// inside the window and still completes them all.
func TestDurationHorizon(t *testing.T) {
	sc := &workload.Scenario{
		Seed:    2,
		Arrival: workload.Arrival{Kind: workload.Uniform, Rate: 1000},
		Mix: []workload.JobClass{{
			Name: "fixed", Weight: 1,
			Profile: workload.Profile{
				PreProcess: workload.Duration(100 * time.Microsecond),
				QPUService: workload.Duration(100 * time.Microsecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "shared", Hosts: 2},
		Horizon: workload.Horizon{Duration: workload.Duration(50 * time.Millisecond)},
	}
	r, err := Simulate(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform arrivals at 1/ms: offsets 1ms..50ms inclusive = 50 jobs.
	if r.Jobs != 50 {
		t.Errorf("admitted %d jobs, want 50", r.Jobs)
	}
	if r.End < 50*time.Millisecond {
		t.Errorf("end %v before the horizon", r.End)
	}
}

// TestDeterministicAcrossGOMAXPROCS is the regression the ISSUE seeds:
// identical scenario + seed must produce byte-identical event logs and
// summaries at any GOMAXPROCS. Run under -race in CI.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := mmcScenario(0.6, 4, 20_000, 99)
	sc.Mix = append(sc.Mix, workload.JobClass{
		Name: "det", Weight: 0.5,
		Profile: workload.Profile{
			PreProcess: workload.Duration(300 * time.Microsecond),
			QPUService: workload.Duration(400 * time.Microsecond),
		},
	})

	type run struct {
		log     string
		summary string
	}
	simulate := func() run {
		var buf bytes.Buffer
		r, err := Simulate(sc, Options{EventLog: &buf})
		if err != nil {
			t.Errorf("Simulate: %v", err)
			return run{}
		}
		return run{log: buf.String(), summary: r.String()}
	}

	prev := runtime.GOMAXPROCS(1)
	baseline := simulate()
	runtime.GOMAXPROCS(prev)
	if baseline.log == "" {
		t.Fatal("baseline produced no event log")
	}

	// Replay concurrently at full GOMAXPROCS: every run must match the
	// single-threaded baseline byte for byte.
	var wg sync.WaitGroup
	runs := make([]run, 4)
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = simulate()
		}(i)
	}
	wg.Wait()
	for i, r := range runs {
		if r.summary != baseline.summary {
			t.Errorf("run %d summary diverged:\n%s\nbaseline:\n%s", i, r.summary, baseline.summary)
		}
		if r.log != baseline.log {
			t.Errorf("run %d event log diverged from baseline (len %d vs %d)", i, len(r.log), len(baseline.log))
		}
	}
}
