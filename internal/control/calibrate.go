package control

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/splitexec/splitexec/internal/graph"
)

// CalibrationOptions parameterize a calibration pass over the hardware
// graph. The paper (§2.2) notes that "faulty qubits and couplers are readily
// identified during processor calibration and must be deactivated to avoid
// unwanted usage"; Calibrate is that identification step, with a time model
// so calibration can appear in end-to-end cost accounting.
type CalibrationOptions struct {
	QubitTest   time.Duration // per-qubit probe time
	CouplerTest time.Duration // per-coupler probe time
	QubitRate   float64       // independent qubit failure probability
	CouplerRate float64       // independent coupler failure probability
}

// DefaultCalibration returns probe times representative of an automated
// calibration sweep (1 ms per element) and the few-percent fault rates
// observed across the D-Wave installations the paper cites.
func DefaultCalibration() CalibrationOptions {
	return CalibrationOptions{
		QubitTest:   time.Millisecond,
		CouplerTest: time.Millisecond,
		QubitRate:   0.02,
		CouplerRate: 0.005,
	}
}

// CalibrationReport describes one calibration pass.
type CalibrationReport struct {
	QubitsTested   int
	CouplersTested int
	DeadQubits     int
	DeadCouplers   int
	Yield          float64       // surviving qubit fraction
	Duration       time.Duration // total probe time
}

// Calibrate sweeps the hardware graph, draws the fault model, and reports
// the pass. The returned fault model is normalized and ready for
// FaultModel.Apply to produce the working graph.
func Calibrate(hw *graph.Graph, opts CalibrationOptions, rng *rand.Rand) (graph.FaultModel, CalibrationReport, error) {
	if hw == nil || hw.Order() == 0 {
		return graph.FaultModel{}, CalibrationReport{}, fmt.Errorf("control: empty hardware graph")
	}
	if opts.QubitRate < 0 || opts.QubitRate > 1 || opts.CouplerRate < 0 || opts.CouplerRate > 1 {
		return graph.FaultModel{}, CalibrationReport{}, fmt.Errorf("control: fault rates (%g, %g) outside [0,1]",
			opts.QubitRate, opts.CouplerRate)
	}
	fm := graph.RandomFaults(hw, opts.QubitRate, opts.CouplerRate, rng)
	fm.Normalize()
	edges := hw.Size()
	rep := CalibrationReport{
		QubitsTested:   hw.Order(),
		CouplersTested: edges,
		DeadQubits:     len(fm.DeadQubits),
		DeadCouplers:   len(fm.DeadCouplers),
		Yield:          fm.Yield(hw.Order()),
		Duration: time.Duration(hw.Order())*opts.QubitTest +
			time.Duration(edges)*opts.CouplerTest,
	}
	return fm, rep, nil
}
