package control

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/qubo"
)

func ringIsing(n int) *qubo.Ising {
	m := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		m.H[i] = 0.3 * float64(i%3-1)
		m.SetCoupling(i, (i+1)%n, -0.8)
	}
	return m
}

func TestSequenceTotalsMatchPaper(t *testing.T) {
	seq := Sequence(anneal.DW2Timings())
	if len(seq) != int(numPhases) {
		t.Fatalf("got %d phases, want %d", len(seq), numPhases)
	}
	var total time.Duration
	for i, p := range seq {
		if p.Phase != Phase(i) {
			t.Fatalf("phase %d out of order: %v", i, p.Phase)
		}
		total += p.Duration
	}
	// The paper's ProcessorInitialize constant: 319,573 µs.
	if want := 319573 * time.Microsecond; total != want {
		t.Fatalf("sequence total %v, want %v", total, want)
	}
	if total != anneal.DW2Timings().ProcessorInitialize() {
		t.Fatal("sequence total disagrees with Timings.ProcessorInitialize")
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhaseStateCon: "StateCon",
		PhasePMMChip:  "PMMChip",
		PhaseElecRun:  "ElecRun",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Phase %d = %q, want %q", p, got, want)
		}
	}
	if got := Phase(200).String(); got != "Phase(200)" {
		t.Errorf("unknown phase = %q", got)
	}
}

func TestDACValidate(t *testing.T) {
	if err := DW2DAC().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DAC{
		{Bits: 0, HRange: 1, JRange: 1},
		{Bits: 63, HRange: 1, JRange: 1},
		{Bits: 4, HRange: 0, JRange: 1},
		{Bits: 4, HRange: 1, JRange: -1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("DAC %+v accepted", d)
		}
	}
}

func TestDACStep(t *testing.T) {
	d := DAC{Bits: 2, HRange: 1, JRange: 1}
	// 2 bits → 3 intervals over [-1,1] → step 2/3.
	if got, want := d.Step(1), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Step = %v, want %v", got, want)
	}
}

func TestDACApplyErrorBounded(t *testing.T) {
	m := ringIsing(8)
	d := DW2DAC()
	maxErr := d.Apply(m)
	// Error is at most half the coarser step.
	bound := math.Max(d.Step(d.HRange), d.Step(d.JRange))/2 + 1e-12
	if maxErr > bound {
		t.Fatalf("maxErr %v exceeds half-step bound %v", maxErr, bound)
	}
	// All realized values sit on their grids.
	for _, h := range m.H {
		if r := math.Mod(h+d.HRange, d.Step(d.HRange)); math.Abs(r) > 1e-9 && math.Abs(r-d.Step(d.HRange)) > 1e-9 {
			t.Fatalf("bias %v off grid", h)
		}
	}
}

func TestDACApplyClampsOutOfRange(t *testing.T) {
	m := qubo.NewIsing(2)
	m.H[0] = 100
	m.SetCoupling(0, 1, -50)
	d := DW2DAC()
	d.Apply(m)
	if m.H[0] > d.HRange+1e-9 {
		t.Fatalf("bias %v not clamped to %v", m.H[0], d.HRange)
	}
	if math.Abs(m.Coupling(0, 1)) > d.JRange+1e-9 {
		t.Fatalf("coupling %v not clamped to %v", m.Coupling(0, 1), d.JRange)
	}
}

func TestHighPrecisionDACIsLossless(t *testing.T) {
	m := ringIsing(6)
	orig := m.Clone()
	d := DAC{Bits: 40, HRange: 2, JRange: 1}
	maxErr := d.Apply(m)
	if maxErr > 1e-9 {
		t.Fatalf("40-bit DAC error %v", maxErr)
	}
	if !GroundStatePreserved(orig, m, 1e-9) {
		t.Fatal("ground state lost at 40 bits")
	}
}

func TestRequiredBits(t *testing.T) {
	// Resolving [-1,1] to step ≤ 0.1 needs ceil(log2(21)) = 5 bits.
	bits, err := RequiredBits(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 5 {
		t.Fatalf("RequiredBits(1, 0.1) = %d, want 5", bits)
	}
	d := DAC{Bits: bits, HRange: 1, JRange: 1}
	if d.Step(1) > 0.1+1e-12 {
		t.Fatalf("claimed bits give step %v > 0.1", d.Step(1))
	}
	// Coarse resolution needs only the minimum.
	bits, err = RequiredBits(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 1 {
		t.Fatalf("coarse RequiredBits = %d, want 1", bits)
	}
	if _, err := RequiredBits(0, 0.1); err == nil {
		t.Fatal("zero range accepted")
	}
	if _, err := RequiredBits(1, 0); err == nil {
		t.Fatal("zero resolution accepted")
	}
}

func TestRequiredBitsSufficiency(t *testing.T) {
	// Property: the returned bit count always achieves the requested step.
	f := func(rQ, resQ uint8) bool {
		r := 0.5 + float64(rQ)/64
		res := 0.01 + float64(resQ)/512
		bits, err := RequiredBits(r, res)
		if err != nil {
			return false
		}
		if bits > 62 {
			return false
		}
		d := DAC{Bits: bits, HRange: r, JRange: r}
		return d.Step(r) <= res+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerProgramBasics(t *testing.T) {
	c := NewController()
	m := ringIsing(8)
	res, err := c.Program(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescale != 1 {
		t.Fatalf("in-range model rescaled by %v", res.Rescale)
	}
	if res.Total != anneal.DW2Timings().ProcessorInitialize() {
		t.Fatalf("Total %v, want ProcessorInitialize", res.Total)
	}
	if res.NoiseApplied {
		t.Fatal("noise applied without configuration")
	}
	if res.Realized == m {
		t.Fatal("Program mutated the intended model instead of cloning")
	}
	// Intended model untouched.
	if m.H[0] != 0.3*float64(0%3-1) {
		t.Fatal("intended model mutated")
	}
}

func TestControllerProgramRescales(t *testing.T) {
	c := NewController()
	m := qubo.NewIsing(3)
	m.H[0] = 8 // 4× the DW2 h-range
	m.SetCoupling(0, 1, -4)
	m.SetCoupling(1, 2, 2)
	res, err := c.Program(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescale >= 1 {
		t.Fatalf("out-of-range model not rescaled: %v", res.Rescale)
	}
	d := c.DAC
	for _, h := range res.Realized.H {
		if math.Abs(h) > d.HRange+1e-9 {
			t.Fatalf("realized bias %v out of range", h)
		}
	}
	for _, e := range res.Realized.Edges() {
		if j := res.Realized.Coupling(e.U, e.V); math.Abs(j) > d.JRange+1e-9 {
			t.Fatalf("realized coupling %v out of range", j)
		}
	}
	// Rescaling preserves the ground state (it is an energy-scale change).
	scaled := m.Clone()
	for i := range scaled.H {
		scaled.H[i] *= res.Rescale
	}
	for _, e := range scaled.Edges() {
		scaled.SetCoupling(e.U, e.V, scaled.Coupling(e.U, e.V)*res.Rescale)
	}
	if !GroundStatePreserved(m, scaled, 1e-9) {
		t.Fatal("pure rescale changed the ground state")
	}
}

func TestControllerProgramErrors(t *testing.T) {
	c := NewController()
	if _, err := c.Program(nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := c.Program(qubo.NewIsing(0), nil); err == nil {
		t.Fatal("empty model accepted")
	}
	c.DAC.Bits = 0
	if _, err := c.Program(ringIsing(4), nil); err == nil {
		t.Fatal("invalid DAC accepted")
	}
	c = NewController()
	n := DW2ICE()
	c.Noise = &n
	if _, err := c.Program(ringIsing(4), nil); err == nil {
		t.Fatal("ICE without rng accepted")
	}
}

func TestControllerProgramWithNoise(t *testing.T) {
	c := NewController()
	c.DAC.Bits = 30 // make quantization negligible so drift is ICE-only
	n := ICE{HSigma: 0.01, JSigma: 0.01}
	c.Noise = &n
	rng := rand.New(rand.NewSource(7))
	m := ringIsing(8)
	res, err := c.Program(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoiseApplied {
		t.Fatal("noise not applied")
	}
	drift := 0.0
	for i := range m.H {
		drift += math.Abs(res.Realized.H[i] - m.H[i])
	}
	if drift == 0 {
		t.Fatal("ICE produced no drift")
	}
}

func TestCoarseDACBreaksGroundState(t *testing.T) {
	// A model whose ground state depends on a small coefficient difference
	// must lose it under a 1-bit DAC but keep it at high precision — the
	// paper's "substantively different from the intended logical input".
	m := qubo.NewIsing(2)
	m.H[0] = 0.30
	m.H[1] = -0.25
	m.SetCoupling(0, 1, 0.45)
	fine := m.Clone()
	(&DAC{Bits: 30, HRange: 2, JRange: 1}).Apply(fine)
	if !GroundStatePreserved(m, fine, 1e-9) {
		t.Fatal("fine DAC lost the ground state")
	}
	coarse := m.Clone()
	(&DAC{Bits: 1, HRange: 2, JRange: 1}).Apply(coarse)
	// 1 bit maps every coefficient to ±range: the model collapses.
	if got := coarse.H[0]; got != 2 && got != -2 {
		t.Fatalf("1-bit bias = %v, want ±2", got)
	}
}
