package control

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/splitexec/splitexec/internal/qubo"
)

// ICE models integrated control errors: the residual analog disorder the
// control system applies on top of quantization. Each programmed bias h_i
// is realized as h_i + δh with δh ~ N(HOffset, HSigma²), and each coupling
// J_ij as J_ij + δJ with δJ ~ N(JOffset, JSigma²). The paper flags this
// drift — "the final, programmed Ising model may be substantively different
// from the intended logical input. It is not yet clear what errors these
// differences contribute to final solutions" — and this type makes the
// question experimentally answerable in simulation.
type ICE struct {
	HSigma  float64 // std-dev of bias disorder
	JSigma  float64 // std-dev of coupling disorder
	HOffset float64 // systematic bias drift
	JOffset float64 // systematic coupling drift
}

// DW2ICE returns disorder amplitudes representative of the DW2 generation:
// about 5% of the unit coupling scale, zero systematic offset.
func DW2ICE() ICE { return ICE{HSigma: 0.05, JSigma: 0.05} }

// Perturb applies one disorder realization to m in place and returns the
// largest absolute perturbation applied.
func (n ICE) Perturb(m *qubo.Ising, rng *rand.Rand) float64 {
	maxAbs := 0.0
	for i := range m.H {
		d := n.HOffset + n.HSigma*rng.NormFloat64()
		m.H[i] += d
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	for _, e := range m.Edges() {
		d := n.JOffset + n.JSigma*rng.NormFloat64()
		m.SetCoupling(e.U, e.V, m.Coupling(e.U, e.V)+d)
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// DistortionStats summarizes a Monte-Carlo precision experiment: over many
// disorder realizations, how often does the realized model keep the intended
// ground state?
type DistortionStats struct {
	Trials    int
	Preserved int     // realizations whose ground state matched the intent
	MeanShift float64 // mean absolute ground-energy shift
}

// PreservationRate returns Preserved/Trials.
func (d DistortionStats) PreservationRate() float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Preserved) / float64(d.Trials)
}

// GroundStateStability measures, by exhaustive enumeration over the given
// number of disorder realizations, how robust the intended model's ground
// state is to this noise level. Only feasible for small models.
func (n ICE) GroundStateStability(intended *qubo.Ising, trials int, tol float64, rng *rand.Rand) (DistortionStats, error) {
	if intended.Dim() > 20 {
		return DistortionStats{}, fmt.Errorf("control: %d spins too large for exhaustive stability check", intended.Dim())
	}
	if trials < 1 {
		return DistortionStats{}, fmt.Errorf("control: trials %d < 1", trials)
	}
	_, e0 := intended.BruteForce()
	st := DistortionStats{Trials: trials}
	shiftSum := 0.0
	for t := 0; t < trials; t++ {
		m := intended.Clone()
		n.Perturb(m, rng)
		if GroundStatePreserved(intended, m, tol) {
			st.Preserved++
		}
		_, e := m.BruteForce()
		shiftSum += math.Abs(e - e0)
	}
	st.MeanShift = shiftSum / float64(trials)
	return st, nil
}
