package control

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

func TestICEPerturbChangesModel(t *testing.T) {
	m := ringIsing(8)
	orig := m.Clone()
	rng := rand.New(rand.NewSource(1))
	maxAbs := DW2ICE().Perturb(m, rng)
	if maxAbs <= 0 {
		t.Fatalf("maxAbs = %v", maxAbs)
	}
	changed := false
	for i := range m.H {
		if m.H[i] != orig.H[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("no bias changed")
	}
}

func TestICEPerturbMaxAbsIsMax(t *testing.T) {
	m := ringIsing(6)
	orig := m.Clone()
	rng := rand.New(rand.NewSource(3))
	maxAbs := DW2ICE().Perturb(m, rng)
	seen := 0.0
	for i := range m.H {
		if d := math.Abs(m.H[i] - orig.H[i]); d > seen {
			seen = d
		}
	}
	for _, e := range m.Edges() {
		if d := math.Abs(m.Coupling(e.U, e.V) - orig.Coupling(e.U, e.V)); d > seen {
			seen = d
		}
	}
	if math.Abs(seen-maxAbs) > 1e-12 {
		t.Fatalf("reported max %v, observed %v", maxAbs, seen)
	}
}

func TestICEZeroSigmaOffsetOnly(t *testing.T) {
	m := ringIsing(4)
	orig := m.Clone()
	n := ICE{HOffset: 0.1, JOffset: -0.2}
	rng := rand.New(rand.NewSource(5))
	n.Perturb(m, rng)
	for i := range m.H {
		if math.Abs(m.H[i]-(orig.H[i]+0.1)) > 1e-12 {
			t.Fatalf("bias %d: %v, want %v", i, m.H[i], orig.H[i]+0.1)
		}
	}
	for _, e := range m.Edges() {
		want := orig.Coupling(e.U, e.V) - 0.2
		if math.Abs(m.Coupling(e.U, e.V)-want) > 1e-12 {
			t.Fatalf("coupling %v: %v, want %v", e, m.Coupling(e.U, e.V), want)
		}
	}
}

func TestGroundStateStabilityNoiseless(t *testing.T) {
	m := ringIsing(6)
	rng := rand.New(rand.NewSource(11))
	st, err := ICE{}.GroundStateStability(m, 10, 1e-9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.PreservationRate() != 1 {
		t.Fatalf("noiseless preservation = %v, want 1", st.PreservationRate())
	}
	if st.MeanShift != 0 {
		t.Fatalf("noiseless shift = %v", st.MeanShift)
	}
}

func TestGroundStateStabilityDegradesWithNoise(t *testing.T) {
	// A near-degenerate instance: tiny field difference decides the ground
	// state, so strong disorder flips it often.
	m := qubo.NewIsing(4)
	m.H[0] = 0.02
	for i := 0; i < 3; i++ {
		m.SetCoupling(i, i+1, -1)
	}
	rng := rand.New(rand.NewSource(23))
	weak, err := ICE{HSigma: 0.001, JSigma: 0.001}.GroundStateStability(m, 60, 1e-9, rng)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := ICE{HSigma: 0.5, JSigma: 0.5}.GroundStateStability(m, 60, 1e-9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if weak.PreservationRate() <= strong.PreservationRate() {
		t.Fatalf("weak noise (%v) should preserve more than strong (%v)",
			weak.PreservationRate(), strong.PreservationRate())
	}
	if strong.MeanShift <= weak.MeanShift {
		t.Fatalf("strong noise should shift energy more: %v <= %v", strong.MeanShift, weak.MeanShift)
	}
}

func TestGroundStateStabilityRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := DW2ICE().GroundStateStability(qubo.NewIsing(25), 5, 1e-9, rng); err == nil {
		t.Fatal("oversized model accepted")
	}
	if _, err := DW2ICE().GroundStateStability(ringIsing(4), 0, 1e-9, rng); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestGroundStatePreservedSymmetricPair(t *testing.T) {
	// Ferromagnetic ring: both all-up and all-down are ground states; a
	// clone must be judged preserved through either.
	m := qubo.NewIsing(4)
	for i := 0; i < 4; i++ {
		m.SetCoupling(i, (i+1)%4, -1)
	}
	if !GroundStatePreserved(m, m.Clone(), 1e-9) {
		t.Fatal("identical degenerate models judged different")
	}
}

func TestGroundStatePreservedDetectsFlip(t *testing.T) {
	a := qubo.NewIsing(2)
	a.H[0], a.H[1] = 1, 1 // ground: both -1
	b := qubo.NewIsing(2)
	b.H[0], b.H[1] = -1, -1 // ground: both +1
	if GroundStatePreserved(a, b, 1e-9) {
		t.Fatal("opposite models judged preserved")
	}
}

func TestCalibrateBasics(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	rng := rand.New(rand.NewSource(42))
	fm, rep, err := Calibrate(hw, DefaultCalibration(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QubitsTested != hw.Order() || rep.CouplersTested != hw.Size() {
		t.Fatalf("tested %d/%d, want %d/%d", rep.QubitsTested, rep.CouplersTested, hw.Order(), hw.Size())
	}
	if rep.DeadQubits != len(fm.DeadQubits) || rep.DeadCouplers != len(fm.DeadCouplers) {
		t.Fatal("report counts disagree with fault model")
	}
	wantDur := time.Duration(hw.Order()+hw.Size()) * time.Millisecond
	if rep.Duration != wantDur {
		t.Fatalf("Duration %v, want %v", rep.Duration, wantDur)
	}
	if rep.Yield <= 0.9 || rep.Yield > 1 {
		t.Fatalf("Yield %v implausible for 2%% fault rate", rep.Yield)
	}
	// The working graph loses exactly the dead couplers plus edges of dead
	// qubits.
	working := fm.Apply(hw)
	if working.Size() >= hw.Size() && rep.DeadQubits+rep.DeadCouplers > 0 {
		t.Fatal("faults did not reduce the working graph")
	}
}

func TestCalibrateZeroRatesPerfectYield(t *testing.T) {
	hw := graph.Complete(10)
	rng := rand.New(rand.NewSource(1))
	fm, rep, err := Calibrate(hw, CalibrationOptions{QubitTest: time.Millisecond, CouplerTest: time.Millisecond}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.DeadQubits) != 0 || len(fm.DeadCouplers) != 0 {
		t.Fatal("zero-rate calibration found faults")
	}
	if rep.Yield != 1 {
		t.Fatalf("Yield %v, want 1", rep.Yield)
	}
}

func TestCalibrateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Calibrate(nil, DefaultCalibration(), rng); err == nil {
		t.Fatal("nil hardware accepted")
	}
	if _, _, err := Calibrate(graph.New(0), DefaultCalibration(), rng); err == nil {
		t.Fatal("empty hardware accepted")
	}
	bad := DefaultCalibration()
	bad.QubitRate = 1.5
	if _, _, err := Calibrate(graph.Complete(4), bad, rng); err == nil {
		t.Fatal("bad rate accepted")
	}
}
