// Package control models the electronic control system that programs a
// D-Wave-style QPU.
//
// The paper (§2.2) describes the pre-processing steps "to initialize the
// electronic control system and construct the analog signals applied to the
// quantum chip", including the programmable magnetic memory (PMM) used as
// the control lines into the super-cooled processor, and notes two hardware
// realities this package makes executable:
//
//   - the programming pipeline contributes a near-constant time cost, broken
//     into the phases whose durations appear in the stage-1 ASPEN listing
//     (state-machine construction, PMM software/electronics/chip programming,
//     thermalization, run overheads);
//   - "the ability to realize these exact parameter values is limited by the
//     bits of precision expressed by the electronic control system and the
//     hardware couplers", so "the final, programmed Ising model may be
//     substantively different from the intended logical input."
//
// Controller.Program runs the whole cycle: range rescaling, DAC
// quantization, integrated-control-error (ICE) perturbation, and the
// per-phase time ledger.
package control

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/qubo"
)

// Phase identifies one step of the electronic programming pipeline.
type Phase uint8

// Programming phases, in execution order. The names mirror the constants of
// the paper's stage-1 ASPEN model (Fig. 6).
const (
	PhaseStateCon Phase = iota // electronic state-machine construction
	PhasePMMSW                 // PMM software setup
	PhasePMMElec               // PMM electronics programming
	PhasePMMChip               // PMM chip programming
	PhasePMMTherm              // post-programming thermalization
	PhaseSWRun                 // software run overhead
	PhaseElecRun               // electronics run overhead
	numPhases
)

var phaseNames = [...]string{
	"StateCon", "PMMSW", "PMMElec", "PMMChip", "PMMTherm", "SWRun", "ElecRun",
}

// String returns the ASPEN constant name of the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// PhaseTime is one entry of the programming time ledger.
type PhaseTime struct {
	Phase    Phase
	Duration time.Duration
}

// Sequence expands QPU timing constants into the ordered programming phase
// ledger. The total equals Timings.ProcessorInitialize.
func Sequence(t anneal.Timings) []PhaseTime {
	return []PhaseTime{
		{PhaseStateCon, t.StateCon},
		{PhasePMMSW, t.PMMSW},
		{PhasePMMElec, t.PMMElec},
		{PhasePMMChip, t.PMMChip},
		{PhasePMMTherm, t.PMMTherm},
		{PhaseSWRun, t.SWRun},
		{PhaseElecRun, t.ElecRun},
	}
}

// DAC describes the digital-to-analog precision of the control lines: the
// number of bits and the representable ranges for qubit biases (h) and
// coupler strengths (J). DW2-generation hardware exposed roughly 4–5
// effective bits over h ∈ [-2,2], J ∈ [-1,1].
type DAC struct {
	Bits   int
	HRange float64
	JRange float64
}

// DW2DAC returns a DW2-representative DAC: 5 bits, h ∈ [-2,2], J ∈ [-1,1].
func DW2DAC() DAC { return DAC{Bits: 5, HRange: 2, JRange: 1} }

// Validate reports whether the DAC description is usable.
func (d DAC) Validate() error {
	if d.Bits < 1 || d.Bits > 62 {
		return fmt.Errorf("control: DAC bits %d outside [1,62]", d.Bits)
	}
	if d.HRange <= 0 || d.JRange <= 0 {
		return fmt.Errorf("control: non-positive DAC range (h=%g, J=%g)", d.HRange, d.JRange)
	}
	return nil
}

// Step returns the quantization step over a symmetric range [-r, r].
func (d DAC) Step(r float64) float64 {
	levels := float64(int64(1)<<uint(d.Bits)) - 1
	return 2 * r / levels
}

// quantizeInto rounds x onto the DAC grid over [-r, r], clamping first.
func (d DAC) quantizeInto(x, r float64) float64 {
	step := d.Step(r)
	clamped := math.Max(-r, math.Min(r, x))
	return math.Round((clamped+r)/step)*step - r
}

// Apply quantizes model m in place onto the DAC grid, using HRange for
// biases and JRange for couplings, and returns the maximum absolute error
// introduced across all coefficients.
func (d DAC) Apply(m *qubo.Ising) (maxErr float64) {
	for i, h := range m.H {
		q := d.quantizeInto(h, d.HRange)
		if e := math.Abs(q - h); e > maxErr {
			maxErr = e
		}
		m.H[i] = q
	}
	for _, e := range m.Edges() {
		j := m.Coupling(e.U, e.V)
		q := d.quantizeInto(j, d.JRange)
		if err := math.Abs(q - j); err > maxErr {
			maxErr = err
		}
		m.SetCoupling(e.U, e.V, q)
	}
	return maxErr
}

// RequiredBits returns the fewest DAC bits resolving the symmetric range
// [-rangeMax, rangeMax] with quantization error at most resolution/2, i.e.
// grid step ≤ resolution. It answers "how much precision keeps chains
// dominant": pass the gap between chain strength and the largest logical
// coefficient as resolution.
func RequiredBits(rangeMax, resolution float64) (int, error) {
	if rangeMax <= 0 || resolution <= 0 {
		return 0, fmt.Errorf("control: non-positive range %g or resolution %g", rangeMax, resolution)
	}
	if resolution >= 2*rangeMax {
		return 1, nil
	}
	bits := int(math.Ceil(math.Log2(2*rangeMax/resolution + 1)))
	if bits < 1 {
		bits = 1
	}
	return bits, nil
}

// Controller is the host-side model of the electronic control system. It
// turns an intended hardware Ising model into the realized (programmed)
// model, charging the paper's per-phase programming costs along the way.
type Controller struct {
	Timings anneal.Timings
	DAC     DAC
	Noise   *ICE // optional integrated control errors; nil = noiseless
}

// NewController returns a controller with the paper's DW2 time constants
// and a DW2-representative DAC.
func NewController() *Controller {
	return &Controller{Timings: anneal.DW2Timings(), DAC: DW2DAC()}
}

// ProgramResult reports one programming cycle: the realized model, how far
// it drifted from the intent, and where the time went.
type ProgramResult struct {
	Realized     *qubo.Ising // what the hardware will anneal
	Rescale      float64     // factor applied to fit the DAC ranges (1 = none)
	MaxQuantErr  float64     // worst |realized - intended| from quantization alone
	Phases       []PhaseTime // per-phase time ledger
	Total        time.Duration
	NoiseApplied bool
}

// Program runs the full programming cycle on a copy of the intended model:
// rescale into DAC range if necessary, quantize, perturb with ICE noise when
// configured, and account the per-phase programming time. rng is used only
// for ICE and may be nil when the controller is noiseless.
func (c *Controller) Program(intended *qubo.Ising, rng *rand.Rand) (*ProgramResult, error) {
	if err := c.DAC.Validate(); err != nil {
		return nil, err
	}
	if intended == nil || intended.Dim() == 0 {
		return nil, fmt.Errorf("control: empty model")
	}
	m := intended.Clone()

	// Rescale so the largest coefficient fits its DAC range. Energy scaling
	// preserves the ground state, so this is safe — but it shrinks every
	// other coefficient toward the quantization floor, which is exactly the
	// precision problem the paper warns about.
	scale := 1.0
	maxH, maxJ := 0.0, 0.0
	for _, h := range m.H {
		if a := math.Abs(h); a > maxH {
			maxH = a
		}
	}
	for _, e := range m.Edges() {
		if a := math.Abs(m.Coupling(e.U, e.V)); a > maxJ {
			maxJ = a
		}
	}
	if maxH > c.DAC.HRange || maxJ > c.DAC.JRange {
		scale = math.Min(
			safeDiv(c.DAC.HRange, maxH),
			safeDiv(c.DAC.JRange, maxJ),
		)
		for i := range m.H {
			m.H[i] *= scale
		}
		for _, e := range m.Edges() {
			m.SetCoupling(e.U, e.V, m.Coupling(e.U, e.V)*scale)
		}
	}

	maxErr := c.DAC.Apply(m)

	res := &ProgramResult{
		Realized:    m,
		Rescale:     scale,
		MaxQuantErr: maxErr,
		Phases:      Sequence(c.Timings),
	}
	if c.Noise != nil {
		if rng == nil {
			return nil, fmt.Errorf("control: ICE noise configured but rng is nil")
		}
		c.Noise.Perturb(m, rng)
		res.NoiseApplied = true
	}
	for _, p := range res.Phases {
		res.Total += p.Duration
	}
	return res, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// GroundStatePreserved reports whether the intended and realized models
// share a ground state, by exhaustive enumeration. It is the oracle for
// precision experiments and only feasible for small models (≤ ~20 spins).
func GroundStatePreserved(intended, realized *qubo.Ising, tol float64) bool {
	gsI, _ := intended.GroundStates(tol)
	gsR, _ := realized.GroundStates(tol)
	for _, a := range gsI {
		for _, b := range gsR {
			if sameSpins(a, b) {
				return true
			}
		}
	}
	return false
}

func sameSpins(a, b []int8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
