module github.com/splitexec/splitexec

go 1.22
