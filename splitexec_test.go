package splitexec_test

import (
	"math"
	"testing"

	splitexec "github.com/splitexec/splitexec"
)

// The facade must expose a complete workflow without touching internal
// packages: build problem → solve → check → predict.
func TestFacadeEndToEnd(t *testing.T) {
	g := splitexec.Cycle(6)
	q := splitexec.MaxCut(g, nil)

	solver := splitexec.NewSolver(splitexec.Config{Seed: 9})
	sol, err := solver.SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	if cut := splitexec.CutValue(g, nil, sol.Binary); cut != 6 {
		t.Errorf("cut = %v, want 6", cut)
	}
	if sol.Timing.Stage1() <= sol.Timing.Stage2() {
		t.Error("facade solve does not show the stage-1 bottleneck")
	}
}

func TestFacadePredictor(t *testing.T) {
	pred := splitexec.NewPredictor(splitexec.SimpleNode())
	s, err := pred.Predict(30, 0.99, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stage1 < 1 || s.Stage1 > 10 {
		t.Errorf("stage1(30) = %v s, expected a few seconds", s.Stage1)
	}
}

func TestFacadeProblemBuilders(t *testing.T) {
	if q := splitexec.NumberPartition([]float64{1, 2, 3}); q.Dim() != 3 {
		t.Error("NumberPartition dim")
	}
	if q := splitexec.MinVertexCover(splitexec.Complete(4), 3); q.Dim() != 4 {
		t.Error("MinVertexCover dim")
	}
	if q := splitexec.MaxIndependentSet(splitexec.Complete(4), 3); q.Dim() != 4 {
		t.Error("MaxIndependentSet dim")
	}
	if q := splitexec.GraphColoring(splitexec.Complete(3), 3, 2); q.Dim() != 9 {
		t.Error("GraphColoring dim")
	}
	is := splitexec.ToIsing(splitexec.NewQUBO(4))
	if is.Dim() != 4 {
		t.Error("ToIsing dim")
	}
}

func TestFacadeTopologiesAndEmbedding(t *testing.T) {
	if splitexec.Vesuvius().Qubits() != 512 || splitexec.DW2X().Qubits() != 1152 {
		t.Error("topology presets wrong")
	}
	vm, err := splitexec.CliqueEmbedding(8, splitexec.Vesuvius())
	if err != nil {
		t.Fatal(err)
	}
	hw := splitexec.Vesuvius().Graph()
	if err := splitexec.ValidateMinor(splitexec.Complete(8), hw, vm, true); err != nil {
		t.Error(err)
	}
}

func TestFacadeAspen(t *testing.T) {
	f, err := splitexec.ParseAspen(splitexec.Stage2Source)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := splitexec.ParseAspenWithIncludes(splitexec.SimpleNode().ToAspen())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := splitexec.BuildAspenMachine(mf, "SimpleNode")
	if err != nil {
		t.Fatal(err)
	}
	res, err := splitexec.EvaluateAspen(f.Models[0], spec, splitexec.AspenEvalOptions{
		Params: map[string]float64{"Accuracy": 99, "Success": 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalSeconds()-405e-6) > 1e-9 {
		t.Errorf("facade aspen eval = %v, want 405 µs", res.TotalSeconds())
	}
}

func TestFacadeRequiredReads(t *testing.T) {
	reads, err := splitexec.RequiredReads(0.99, 0.7)
	if err != nil || reads != 4 {
		t.Errorf("RequiredReads = %d, %v", reads, err)
	}
	if splitexec.DW2Timings().AnnealTime.Microseconds() != 20 {
		t.Error("DW2Timings anneal time wrong")
	}
}
