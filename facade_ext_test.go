package splitexec_test

// Smoke tests for the extension sections of the public facade: every new
// re-export is exercised once through the splitexec import path, so a
// downstream user of the package sees the same behaviour the internal
// packages' own suites verify in depth.

import (
	"math/rand"
	"testing"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func TestFacadeScheduleExports(t *testing.T) {
	sc := splitexec.LinearSchedule(20 * time.Microsecond)
	if err := sc.Validate(splitexec.DW2ScheduleLimits()); err != nil {
		t.Fatal(err)
	}
	ps, err := splitexec.SuccessProbability(sc, splitexec.DefaultGapModel())
	if err != nil {
		t.Fatal(err)
	}
	if ps < 0.65 || ps > 0.75 {
		t.Fatalf("ps = %v, want ≈0.7", ps)
	}
	tts, err := splitexec.TTS(20*time.Microsecond, ps, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tts <= 0 {
		t.Fatal("non-positive TTS")
	}
	best, _, err := splitexec.OptimalAnnealTime(splitexec.DefaultGapModel(), 0.99,
		splitexec.DW2ScheduleLimits(), 325*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if best < splitexec.DW2ScheduleLimits().MinDuration {
		t.Fatalf("optimal %v below hardware floor", best)
	}
	if _, err := splitexec.ScheduleWithPause(20*time.Microsecond, 0.5, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if _, err := splitexec.ScheduleWithQuench(20*time.Microsecond, 0.5, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if _, err := splitexec.CustomSchedule([]splitexec.SchedulePoint{{T: 0, S: 0}, {T: time.Microsecond, S: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := splitexec.SweepTTS(splitexec.DefaultGapModel(), 0.9, time.Microsecond, time.Millisecond, 4, 0); err != nil {
		t.Fatal(err)
	}
	ring := splitexec.NewIsing(4)
	for i := 0; i < 4; i++ {
		ring.SetCoupling(i, (i+1)%4, -1)
	}
	gap, err := splitexec.EstimateGap(ring)
	if err != nil {
		t.Fatal(err)
	}
	if gap.MinGap <= 0 || gap.MinGap > 1 {
		t.Fatalf("estimated gap %v outside (0,1]", gap.MinGap)
	}
}

func TestFacadeControlExports(t *testing.T) {
	ctl := splitexec.NewController()
	if ctl.DAC != splitexec.DW2DAC() {
		t.Fatal("controller not using DW2 DAC")
	}
	m := splitexec.NewIsing(4)
	m.H[0] = 0.5
	m.SetCoupling(0, 1, -0.8)
	res, err := ctl.Program(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 319573*time.Microsecond {
		t.Fatalf("programming total %v, want the paper's constant", res.Total)
	}
	if len(splitexec.ProgrammingSequence(splitexec.DW2Timings())) != 7 {
		t.Fatal("phase ledger should have 7 entries")
	}
	rng := rand.New(rand.NewSource(1))
	ice := splitexec.DW2ICE()
	if got := ice.Perturb(m.Clone(), rng); got <= 0 {
		t.Fatal("ICE produced no perturbation")
	}
	hw := splitexec.Vesuvius().Graph()
	fm, rep, err := splitexec.Calibrate(hw, splitexec.DefaultCalibration(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QubitsTested != hw.Order() || fm.Yield(hw.Order()) != rep.Yield {
		t.Fatal("calibration report inconsistent")
	}
	bits, err := splitexec.RequiredBits(1, 0.1)
	if err != nil || bits != 5 {
		t.Fatalf("RequiredBits = %d, %v", bits, err)
	}
}

func TestFacadeGIExports(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := splitexec.Cycle(5)
	h, err := splitexec.RelabelGraph(g, []int{4, 2, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := splitexec.AreIsomorphic(g, h, splitexec.GIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Fatal("relabeled cycle not identified")
	}
	if err := splitexec.VerifyIsomorphism(g, h, res.Perm); err != nil {
		t.Fatal(err)
	}
	idx, _, err := splitexec.MatchGraph(h, []*splitexec.Graph{splitexec.Star(5), g}, splitexec.GIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("MatchGraph = %d, want 1", idx)
	}
	red, err := splitexec.ReduceGI(g, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if red.Q.Dim() != 25 {
		t.Fatalf("reduction dim %d", red.Q.Dim())
	}
}

func TestFacadeParallelExports(t *testing.T) {
	hw := splitexec.Vesuvius().Graph()
	res, err := splitexec.FindEmbeddingParallel(splitexec.Complete(5), hw,
		splitexec.ParallelEmbedOptions{Workers: 2, Seeds: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := splitexec.ValidateMinor(splitexec.Complete(5), hw, res.VM, true); err != nil {
		t.Fatal(err)
	}
	items, err := splitexec.EmbedBatch([]*splitexec.Graph{splitexec.Cycle(4)}, hw, 2, 1, splitexec.EmbedOptions{})
	if err != nil || items[0].Err != nil {
		t.Fatalf("EmbedBatch: %v / %v", err, items[0].Err)
	}
	jobs := []splitexec.StageCost{
		{Pre: time.Millisecond, QPU: time.Millisecond, Post: time.Microsecond},
		{Pre: time.Millisecond, QPU: time.Millisecond, Post: time.Microsecond},
	}
	seq := splitexec.SequentialMakespan(jobs)
	pip, _, err := splitexec.PipelinedMakespan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pip >= seq {
		t.Fatalf("no overlap: %v >= %v", pip, seq)
	}
	if sp, err := splitexec.PipelineSpeedup(jobs); err != nil || sp <= 1 {
		t.Fatalf("speedup %v, %v", sp, err)
	}
	ran := false
	if err := splitexec.RunPipeline([]splitexec.PipelineJob{{Post: func() error { ran = true; return nil }}}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("RunPipeline skipped the job")
	}
}

func TestFacadeDSEExports(t *testing.T) {
	obj := splitexec.DSEObjective(func(p map[string]float64) (float64, error) {
		return p["x"] * p["x"], nil
	})
	tbl, err := splitexec.SweepModel(obj, []splitexec.DSEAxis{{Name: "x", Values: splitexec.LinSpace(1, 3, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || tbl.Rows[2].Value != 9 {
		t.Fatalf("sweep rows %v", tbl.Rows)
	}
	sens, err := splitexec.Sensitivities(obj, map[string]float64{"x": 2}, 0.01)
	if err != nil || len(sens) != 1 {
		t.Fatalf("sensitivities: %v %v", sens, err)
	}
	if sens[0].Elasticity < 1.9 || sens[0].Elasticity > 2.1 {
		t.Fatalf("elasticity %v, want ≈2", sens[0].Elasticity)
	}
	budget := splitexec.DSEObjective(func(map[string]float64) (float64, error) { return 4, nil })
	x, err := splitexec.Crossover(obj, budget, "x", 0.1, 10, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if x < 1.99 || x > 2.01 {
		t.Fatalf("crossover %v, want 2", x)
	}
	if vals := splitexec.LogSpace(1, 100, 3); len(vals) != 3 || vals[1] < 9.999 || vals[1] > 10.001 {
		t.Fatalf("LogSpace %v", vals)
	}
}

func TestFacadeWorkloadExports(t *testing.T) {
	c := []float64{1, 2, 3}
	p, err := splitexec.IntegerLinearProgram(c, [][]float64{{1, 1, 1}}, []float64{2}, splitexec.SafeILPPenalty(c))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := p.Q.BruteForce()
	if x[0] != 1 || x[1] != 1 || x[2] != 0 {
		t.Fatalf("ILP optimum %v", x)
	}
	H := [][]float64{{1, -1}, {-1, 1}}
	y := []float64{1, -1}
	e, err := splitexec.WeakClassifierEnsemble(H, y, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := e.Q.BruteForce()
	if w[0] != 1 {
		t.Fatalf("perfect classifier not selected: %v", w)
	}
	sets := [][]int{{0, 1}, {2}, {0, 1, 2}}
	sc, err := splitexec.MinSetCover(3, sets, nil, splitexec.SafeSetCoverPenalty(sets, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sc.Q.BruteForce()
	chosen, valid := sc.Decode(b)
	if !valid || !splitexec.IsSetCover(3, sets, chosen) {
		t.Fatalf("facade set cover invalid: %v", chosen)
	}
}

// TestFacadeCompiledKernel exercises the compiled-kernel surface: compiling
// an Ising program, collecting reads through the parallel fan-out, and the
// worker-count invariance of the results.
func TestFacadeCompiledKernel(t *testing.T) {
	m := splitexec.NewIsing(6)
	for i := 0; i+1 < 6; i++ {
		m.SetCoupling(i, i+1, -1)
	}
	c := splitexec.CompileIsing(m)
	ones := make([]int8, 6)
	for i := range ones {
		ones[i] = 1
	}
	if e := c.Energy(ones); e != -5 {
		t.Fatalf("compiled energy = %v, want -5", e)
	}
	cfg := splitexec.Config{Seed: 3, ReadWorkers: 4}
	sol, err := splitexec.NewSolver(cfg).SolveQUBO(splitexec.MaxCut(splitexec.Cycle(6), nil))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy != -6 {
		t.Fatalf("parallel-read solve energy = %v, want -6", sol.Energy)
	}
}

// TestFacadeDispatchService exercises the concurrent dispatch-service
// surface: a shared-resource service run through the facade, a profile
// batch validated against the exported architecture simulation, and the
// TCP front-end reached through DialService.
func TestFacadeDispatchService(t *testing.T) {
	svc, err := splitexec.NewService(splitexec.ServiceOptions{Workers: 2, Fleet: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := splitexec.JobProfile{
		PreProcess:  2 * time.Millisecond,
		QPUService:  time.Millisecond,
		PostProcess: time.Millisecond,
	}
	const jobs = 6
	for i := 0; i < jobs; i++ {
		if _, err := svc.SubmitProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	client, err := splitexec.DialService(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(30 * time.Second)
	resp, err := client.Solve(splitexec.MaxCut(splitexec.Cycle(4), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Binary) != 4 {
		t.Fatalf("remote solve response: %+v", resp)
	}

	rep := svc.Drain()
	if rep.Jobs != jobs+1 || rep.Failed != 0 {
		t.Fatalf("report %+v, want %d jobs, 0 failed", rep, jobs+1)
	}
	predicted, err := splitexec.SimulateArchitecture(
		splitexec.ArchSystem{Kind: splitexec.SharedResource, Hosts: 2}, p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan < predicted/2 {
		t.Fatalf("measured makespan %v implausibly below prediction %v", rep.Makespan, predicted)
	}
}

func TestFacadeOpenWorkloadExports(t *testing.T) {
	sc := &splitexec.Scenario{
		Name:    "facade",
		Seed:    9,
		Arrival: splitexec.ScenarioArrival{Kind: splitexec.PoissonArrivals, Rate: 400},
		Mix: []splitexec.ScenarioJobClass{{
			Name: "exp", Weight: 1, Dist: splitexec.ExponentialService,
			Profile: splitexec.ScenarioProfile{
				PreProcess: splitexec.ScenarioDuration(600 * time.Microsecond),
				QPUService: splitexec.ScenarioDuration(400 * time.Microsecond),
			},
		}},
		System:  splitexec.ScenarioSystem{Kind: "dedicated", Hosts: 2},
		Horizon: splitexec.ScenarioHorizon{Jobs: 5000},
	}
	data, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := splitexec.DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}

	sim, err := splitexec.SimulateWorkload(decoded, splitexec.WorkloadSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Jobs != 5000 || sim.Sojourn.P99 <= 0 {
		t.Fatalf("simulated result: %+v", sim)
	}
	pred, err := splitexec.AnalyticWorkload(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(sim.Sojourn.Mean) / float64(pred.SojournMean); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("simulated mean sojourn %v vs analytic %v", sim.Sojourn.Mean, pred.SojournMean)
	}
	if direct, err := splitexec.AnalyticMMC(pred.Lambda, pred.Mu, pred.Servers); err != nil || direct.ErlangC != pred.ErlangC {
		t.Fatalf("AnalyticMMC disagreed with AnalyticWorkload: %+v vs %+v (%v)", direct, pred, err)
	}

	// A short live replay through the facade's service + loadgen exports.
	live := *decoded
	live.Horizon = splitexec.ScenarioHorizon{Jobs: 30}
	svc, err := splitexec.NewService(splitexec.ServiceOptions{Workers: 2, Fleet: 2, QueueDepth: 30})
	if err != nil {
		t.Fatal(err)
	}
	got, err := splitexec.RunLoadgen(&live, splitexec.LoadgenOptions{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	rep := svc.Drain()
	if got.Jobs != 30 || got.Failed != 0 || rep.Sojourn.N != 30 {
		t.Fatalf("loadgen %+v, drain sojourn %+v", got, rep.Sojourn)
	}
	s := splitexec.SummarizeDurations([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if s.Mean != 2*time.Millisecond || s.Max != 3*time.Millisecond {
		t.Fatalf("SummarizeDurations = %+v", s)
	}
}

func TestFacadePolicyAndPlannerExports(t *testing.T) {
	if got := splitexec.SchedulingPolicies(); len(got) != 4 || got[0] != splitexec.FIFOPolicy {
		t.Fatalf("SchedulingPolicies() = %v", got)
	}
	sc := &splitexec.Scenario{
		Name:    "facade-plan",
		Seed:    3,
		Arrival: splitexec.ScenarioArrival{Kind: splitexec.PoissonArrivals, Rate: 1100},
		Mix: []splitexec.ScenarioJobClass{{
			Name: "exp", Weight: 1, Dist: splitexec.ExponentialService, Priority: 1,
			Profile: splitexec.ScenarioProfile{
				PreProcess: splitexec.ScenarioDuration(600 * time.Microsecond),
				QPUService: splitexec.ScenarioDuration(400 * time.Microsecond),
			},
		}},
		System:  splitexec.ScenarioSystem{Kind: "dedicated", Hosts: 1},
		Horizon: splitexec.ScenarioHorizon{Jobs: 8000},
		Policy:  splitexec.PriorityPolicy,
	}
	p, err := splitexec.PlanCapacity(sc,
		splitexec.CapacityTarget{P99Sojourn: 12 * time.Millisecond},
		splitexec.CapacitySpace{Hosts: []int{1, 2, 4}},
		splitexec.CapacityPlanOptions{Costs: splitexec.CapacityCosts{Host: 1, QPU: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Best == nil || !p.Best.Meets {
		t.Fatalf("plan found no satisfying configuration: %+v", p)
	}
	if p.Best.Policy != splitexec.PriorityPolicy {
		t.Errorf("plan did not inherit the scenario policy: %q", p.Best.Policy)
	}
	// A policy-bearing scenario must round-trip through the facade decoder.
	data, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := splitexec.DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy != splitexec.PriorityPolicy || back.Mix[0].Priority != 1 {
		t.Errorf("policy fields lost in facade round trip: %+v", back)
	}
	// The live service accepts the same policy plus per-job classes.
	svc, err := splitexec.NewService(splitexec.ServiceOptions{Workers: 1, QueueDepth: 4, Policy: splitexec.FairSharePolicy})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.SubmitProfileClass(splitexec.JobProfile{PreProcess: time.Millisecond},
		splitexec.ServiceJobClass{Class: 1, Priority: 2, Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if rep := svc.Drain(); rep.Jobs != 1 {
		t.Fatalf("drain report %+v", rep)
	}
}
