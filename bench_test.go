package splitexec_test

// Benchmark harness: one benchmark per figure/listing of the paper's
// evaluation plus ablations for the design choices DESIGN.md calls out.
// Run with: go test -bench=. -benchmem
//
//	BenchmarkFig5MachineModel   parse+resolve the Fig. 5 machine model
//	BenchmarkFig6Stage1Model    analytic stage-1 evaluation across LPS
//	BenchmarkFig7Stage2Model    analytic stage-2 evaluation across accuracy
//	BenchmarkFig8Stage3Model    analytic stage-3 evaluation across LPS
//	BenchmarkFig9aEmbedding     measured CMR embedding (the dashed series)
//	BenchmarkFig9bSampling      simulated quantum execution per read count
//	BenchmarkFig9cSort          measured stage-3 heapsort
//	BenchmarkPipelineEndToEnd   full split-execution solve
//	BenchmarkOfflineEmbedding   ablation: inline CMR vs. lookup-table reuse
//	BenchmarkCliqueVsCMR        ablation: deterministic clique layout vs CMR
//	BenchmarkQuantization       ablation: DAC-precision parameter rounding
//	BenchmarkSubstrateSAvsSQA   ablation: classical vs quantum sampler
//	BenchmarkArchitectures      Fig. 1(a/b/c) batch comparison
//	BenchmarkRemoteQPU          local vs TCP device path

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
)

func BenchmarkFig5MachineModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := aspen.LoadSimpleNode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Stage1Model(b *testing.B) {
	pred := core.NewPredictor(machine.SimpleNode())
	for _, n := range []int{10, 30, 100} {
		b.Run(fmt.Sprintf("LPS=%d", n), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := pred.Stage1(n)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSeconds()
			}
			b.ReportMetric(total, "predicted_s")
		})
	}
}

func BenchmarkFig7Stage2Model(b *testing.B) {
	pred := core.NewPredictor(machine.SimpleNode())
	for _, pa := range []float64{0.9, 0.99, 0.9999} {
		b.Run(fmt.Sprintf("pa=%v", pa), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := pred.Stage2(pa, 0.7)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSeconds()
			}
			b.ReportMetric(total*1e6, "predicted_µs")
		})
	}
}

func BenchmarkFig8Stage3Model(b *testing.B) {
	pred := core.NewPredictor(machine.SimpleNode())
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("LPS=%d", n), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := pred.Stage3(n, 0.99, 0.75)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSeconds()
			}
			b.ReportMetric(total*1e9, "predicted_ns")
		})
	}
}

// BenchmarkFig9aEmbedding measures the wall-clock CMR embedding of complete
// graphs into the DW2X hardware graph — the experimental (dashed) series of
// Fig. 9(a). ns/op is the measured stage-1 embedding cost on this host.
func BenchmarkFig9aEmbedding(b *testing.B) {
	hw := graph.DW2X().Graph()
	for _, n := range []int{5, 10, 15, 20} {
		b.Run(fmt.Sprintf("K%d", n), func(b *testing.B) {
			g := graph.Complete(n)
			rng := rand.New(rand.NewSource(1))
			var qubits int
			for i := 0; i < b.N; i++ {
				vm, st, err := embed.FindEmbedding(g, hw, rng, embed.Options{MaxTries: 20})
				if err != nil {
					b.Fatal(err)
				}
				_ = vm
				qubits = st.PhysicalQubits
			}
			b.ReportMetric(float64(qubits), "phys_qubits")
		})
	}
}

// BenchmarkFig9bSampling runs the simulated QPU for the read counts Eq. 6
// prescribes at each accuracy level; virtual_µs is the paper's predicted
// hardware time for the same call.
func BenchmarkFig9bSampling(b *testing.B) {
	// Fixed small program: random spin glass on one Chimera cell.
	rng := rand.New(rand.NewSource(2))
	cell := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	model := qubo.RandomIsing(cell, 1, 1, rng)
	for _, pa := range []float64{0.9, 0.99, 0.9999} {
		reads, err := anneal.RequiredReads(pa, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pa=%v/reads=%d", pa, reads), func(b *testing.B) {
			dev := anneal.NewDevice(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 64})
			dev.Program(model)
			for i := 0; i < b.N; i++ {
				if _, err := dev.Execute(reads, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(anneal.DW2Timings().ExecutionTime(reads).Seconds()*1e6, "virtual_µs")
		})
	}
}

// BenchmarkFig9cSort heapsorts a readout ensemble of 4 samples (the
// listing's Results) of length n — the measured stage-3 cost.
func BenchmarkFig9cSort(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Pre-build a pool of unsorted readout sets: per-iteration
			// StopTimer/StartTimer would dominate wall-clock without being
			// measured and blow the suite's time budget.
			spins := make([]int8, n)
			const pool = 256
			sets := make([]*anneal.SampleSet, pool)
			for j := range sets {
				sets[j] = anneal.NewSampleSet(n)
				for r := 0; r < 4; r++ {
					sets[j].Add(spins, rng.NormFloat64())
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sets[i%pool].SortByEnergy()
			}
		})
	}
}

// BenchmarkPipelineEndToEnd runs complete split-execution solves; the
// virtual QPU constants (0.32 s programming) are bookkeeping, not wall
// time, so ns/op reflects the real classical work.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("cycle%d", n), func(b *testing.B) {
			g := graph.Cycle(n)
			q := qubo.MaxCut(g, nil)
			for i := 0; i < b.N; i++ {
				node := machine.SimpleNode()
				node.QPU = machine.DW2Vesuvius()
				solver := core.NewSolver(core.Config{Node: node, Seed: int64(i)})
				if _, err := solver.SolveQUBO(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOfflineEmbedding is the §4 ablation: repeated solves of
// isomorphic problems with inline CMR vs the lookup table.
func BenchmarkOfflineEmbedding(b *testing.B) {
	g := graph.Cycle(10)
	q := qubo.MaxCut(g, nil)
	node := machine.SimpleNode()
	node.QPU = machine.DW2Vesuvius()

	b.Run("inline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := core.NewSolver(core.Config{Node: node, Seed: int64(i)})
			if _, err := solver.SolveQUBO(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := core.NewEmbeddingCache()
		// Warm the cache once.
		warm := core.NewSolver(core.Config{Node: node, Seed: 0, Cache: cache})
		if _, err := warm.SolveQUBO(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver := core.NewSolver(core.Config{Node: node, Seed: int64(i), Cache: cache})
			if _, err := solver.SolveQUBO(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCliqueVsCMR compares the two complete-graph embedding strategies
// of §2.2: the deterministic minor-universal clique layout against the
// probabilistic CMR search.
func BenchmarkCliqueVsCMR(b *testing.B) {
	c := graph.DW2X()
	hw := c.Graph()
	const n = 16
	b.Run("clique-layout", func(b *testing.B) {
		var qubits int
		for i := 0; i < b.N; i++ {
			vm, err := embed.CliqueEmbedding(n, c)
			if err != nil {
				b.Fatal(err)
			}
			qubits = vm.PhysicalQubits()
		}
		b.ReportMetric(float64(qubits), "phys_qubits")
	})
	b.Run("cmr-search", func(b *testing.B) {
		g := graph.Complete(n)
		rng := rand.New(rand.NewSource(4))
		var qubits int
		for i := 0; i < b.N; i++ {
			vm, _, err := embed.FindEmbedding(g, hw, rng, embed.Options{MaxTries: 20})
			if err != nil {
				b.Fatal(err)
			}
			qubits = vm.PhysicalQubits()
		}
		b.ReportMetric(float64(qubits), "phys_qubits")
	})
}

// BenchmarkQuantization measures the DAC-precision rounding pass of
// parameter setting (§2.2's control-precision limitation).
func BenchmarkQuantization(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	hw := graph.Vesuvius().Graph()
	model := qubo.RandomIsing(hw, 1, 1, rng)
	for _, bits := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			// A pool of pre-made clones avoids per-iteration
			// StopTimer/StartTimer, whose untimed overhead dominates
			// wall-clock; re-quantizing an already-quantized model runs the
			// identical rounding pass.
			const pool = 64
			clones := make([]*qubo.Ising, pool)
			for j := range clones {
				clones[j] = model.Clone()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				embed.Quantize(clones[i%pool], bits, 2)
			}
		})
	}
}

// BenchmarkPublicAPI exercises the facade end to end, guarding against
// regressions in the re-exported surface.
func BenchmarkPublicAPI(b *testing.B) {
	g := splitexec.Cycle(8)
	q := splitexec.MaxCut(g, nil)
	for i := 0; i < b.N; i++ {
		solver := splitexec.NewSolver(splitexec.Config{Seed: int64(i)})
		sol, err := solver.SolveQUBO(q)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Energy > -6 {
			b.Fatalf("poor solution: %v", sol.Energy)
		}
	}
}

// BenchmarkSubstrateSAvsSQA is the sampler-substrate ablation: classical
// Metropolis annealing vs path-integral simulated quantum annealing on the
// same chain-coupled hardware program. success_rate reports the fraction of
// reads that reached the known ground state.
func BenchmarkSubstrateSAvsSQA(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(8)
	logical := qubo.RandomIsing(g, 1, 1, rng)
	_, ground := logical.BruteForce()
	hw := graph.Chimera{M: 3, N: 3, L: 4}.Graph()
	vm, _, err := embed.FindEmbedding(g, hw, rng, embed.Options{MaxTries: 20})
	if err != nil {
		b.Fatal(err)
	}
	em, err := embed.SetParameters(logical, vm, hw, 0)
	if err != nil {
		b.Fatal(err)
	}
	chainBonus := 0.0
	for _, edges := range graph.ChainEdges(hw, vm) {
		chainBonus += -em.ChainStrength * float64(len(edges))
	}
	groundHW := ground + chainBonus

	b.Run("simulated-annealing", func(b *testing.B) {
		s := anneal.NewSampler(em.Model, anneal.SamplerOptions{Sweeps: 64})
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, e := s.Anneal(rng); e <= groundHW+1e-9 {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "success_rate")
	})
	b.Run("simulated-quantum-annealing", func(b *testing.B) {
		s := anneal.NewSQASampler(em.Model, anneal.SQAOptions{Sweeps: 64, Replicas: 8})
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, e := s.Anneal(rng); e <= groundHW+1e-9 {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "success_rate")
	})
}

// BenchmarkArchitectures evaluates the Fig. 1 comparison (closed form via
// the discrete-event simulation) at batch scale.
func BenchmarkArchitectures(b *testing.B) {
	profile := arch.JobProfile{
		PreProcess:  2 * time.Second,
		Network:     10 * time.Microsecond,
		QPUService:  320 * time.Millisecond,
		PostProcess: time.Microsecond,
	}
	for i := 0; i < b.N; i++ {
		if _, err := arch.Compare(profile, 256, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteQPU measures the networked stage-2 path against the local
// one: the per-call overhead of the client-server interface (Fig. 1a LAN
// deployment) on loopback.
func BenchmarkRemoteQPU(b *testing.B) {
	model := qubo.NewIsing(16)
	for i := 0; i+1 < 16; i++ {
		model.SetCoupling(i, i+1, -1)
	}
	rng := rand.New(rand.NewSource(8))

	b.Run("local", func(b *testing.B) {
		dev := anneal.NewDevice(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 32})
		dev.Program(model)
		for i := 0; i < b.N; i++ {
			if _, err := dev.Execute(4, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		srv := qpuserver.NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 32})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := qpuserver.Dial(addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		if err := cli.Program(model); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Execute(4, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}
