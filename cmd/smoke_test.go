// Package cmd holds end-to-end smoke tests for the repository's binaries:
// each command is built with the real toolchain and driven through a fast
// flag configuration, pinning exit status and the shape of its output. The
// long-running servers (qpud, splitexec serve) are additionally probed over
// their TCP interfaces before being shut down.
package cmd

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/service"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "splitexec-cmd-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	for _, name := range []string{"splitexec", "figures", "aspeneval", "qpud"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "./"+name)
		cmd.Dir = "." // the cmd/ directory
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", name, err, out)
			os.RemoveAll(binDir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// run executes a built binary with args, asserting exit 0, and returns its
// combined output.
func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestSplitexecSmoke(t *testing.T) {
	out := run(t, "splitexec", "-problem", "maxcut", "-n", "8", "-seed", "1", "-sweeps", "32", "-m", "4", "-ncols", "4")
	for _, want := range []string{"problem:", "solution:", "time-to-solution breakdown", "stage 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSplitexecPartitionSmoke(t *testing.T) {
	out := run(t, "splitexec", "-problem", "partition", "-n", "8", "-seed", "2", "-sweeps", "32", "-m", "4", "-ncols", "4")
	if !strings.Contains(out, "partition residual") {
		t.Errorf("output missing partition check:\n%s", out)
	}
}

func TestFiguresSmoke(t *testing.T) {
	out := run(t, "figures", "-fig", "9b")
	if !strings.Contains(out, "Fig 9(b)") || !strings.Contains(out, "accuracy\treads\tmodel_s") {
		t.Errorf("figures -fig 9b output unexpected:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 5 {
		t.Errorf("figures -fig 9b printed only %d lines", lines)
	}
}

func TestAspenevalSmoke(t *testing.T) {
	out := run(t, "aspeneval", "-stage", "1", "-param", "LPS=30")
	if !strings.Contains(out, "model Stage1") || !strings.Contains(out, "total predicted runtime") {
		t.Errorf("aspeneval output unexpected:\n%s", out)
	}
}

// startServer launches a binary expected to keep running, waits for its
// logs to match addrRe, and returns the captured address. The process is
// killed at test cleanup.
func startServer(t *testing.T, addrRe *regexp.Regexp, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	var buf bytes.Buffer
	var mu sync.Mutex
	cmd.Stdout = &lockedWriter{buf: &buf, mu: &mu}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		m := addrRe.FindStringSubmatch(buf.String())
		mu.Unlock()
		if m != nil {
			return m[1]
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("%s never announced its address; output:\n%s", name, buf.String())
	return ""
}

type lockedWriter struct {
	buf *bytes.Buffer
	mu  *sync.Mutex
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestQpudSmoke(t *testing.T) {
	addr := startServer(t,
		regexp.MustCompile(`serving simulated QPU on (\S+)`),
		"qpud", "-addr", "127.0.0.1:0", "-m", "4", "-ncols", "4", "-sweeps", "16")
	c, err := qpuserver.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	resp, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !resp.OK || resp.Programmed {
		t.Errorf("fresh qpud status = %+v", resp)
	}
}

func TestSplitexecServeSmoke(t *testing.T) {
	addr := startServer(t,
		regexp.MustCompile(`serving split-execution solves on (\S+)`),
		"splitexec", "serve", "-addr", "127.0.0.1:0", "-hosts", "2", "-devices", "1",
		"-m", "4", "-ncols", "4", "-sweeps", "32")
	c, err := service.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	c.SetTimeout(30 * time.Second)
	q := qubo.NewQUBO(3)
	q.Set(0, 0, 1)
	q.Set(0, 1, -2)
	q.Set(1, 2, -2)
	resp, err := c.Solve(q)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !resp.OK || len(resp.Binary) != 3 || resp.Reads < 1 {
		t.Errorf("solve response = %+v", resp)
	}
	if got := q.Energy([]int8{int8(resp.Binary[0]), int8(resp.Binary[1]), int8(resp.Binary[2])}); got != resp.Energy {
		t.Errorf("reported energy %v != recomputed %v", resp.Energy, got)
	}
}
