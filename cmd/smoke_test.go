// Package cmd holds end-to-end smoke tests for the repository's binaries:
// each command is built with the real toolchain and driven through a fast
// flag configuration, pinning exit status and the shape of its output. The
// long-running servers (qpud, splitexec serve) are additionally probed over
// their TCP interfaces before being shut down.
package cmd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/service"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "splitexec-cmd-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	for _, name := range []string{"splitexec", "figures", "aspeneval", "qpud"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "./"+name)
		cmd.Dir = "." // the cmd/ directory
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", name, err, out)
			os.RemoveAll(binDir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// run executes a built binary with args, asserting exit 0, and returns its
// combined output.
func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestSplitexecSmoke(t *testing.T) {
	out := run(t, "splitexec", "-problem", "maxcut", "-n", "8", "-seed", "1", "-sweeps", "32", "-m", "4", "-ncols", "4")
	for _, want := range []string{"problem:", "solution:", "time-to-solution breakdown", "stage 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSplitexecPartitionSmoke(t *testing.T) {
	out := run(t, "splitexec", "-problem", "partition", "-n", "8", "-seed", "2", "-sweeps", "32", "-m", "4", "-ncols", "4")
	if !strings.Contains(out, "partition residual") {
		t.Errorf("output missing partition check:\n%s", out)
	}
}

func TestFiguresSmoke(t *testing.T) {
	out := run(t, "figures", "-fig", "9b")
	if !strings.Contains(out, "Fig 9(b)") || !strings.Contains(out, "accuracy\treads\tmodel_s") {
		t.Errorf("figures -fig 9b output unexpected:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 5 {
		t.Errorf("figures -fig 9b printed only %d lines", lines)
	}
}

func TestAspenevalSmoke(t *testing.T) {
	out := run(t, "aspeneval", "-stage", "1", "-param", "LPS=30")
	if !strings.Contains(out, "model Stage1") || !strings.Contains(out, "total predicted runtime") {
		t.Errorf("aspeneval output unexpected:\n%s", out)
	}
}

// startServer launches a binary expected to keep running, waits for its
// logs to match addrRe, and returns the captured address. The process is
// killed at test cleanup.
func startServer(t *testing.T, addrRe *regexp.Regexp, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	var buf bytes.Buffer
	var mu sync.Mutex
	cmd.Stdout = &lockedWriter{buf: &buf, mu: &mu}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		m := addrRe.FindStringSubmatch(buf.String())
		mu.Unlock()
		if m != nil {
			return m[1]
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("%s never announced its address; output:\n%s", name, buf.String())
	return ""
}

type lockedWriter struct {
	buf *bytes.Buffer
	mu  *sync.Mutex
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestQpudSmoke(t *testing.T) {
	addr := startServer(t,
		regexp.MustCompile(`serving simulated QPU on (\S+)`),
		"qpud", "-addr", "127.0.0.1:0", "-m", "4", "-ncols", "4", "-sweeps", "16")
	c, err := qpuserver.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	resp, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !resp.OK || resp.Programmed {
		t.Errorf("fresh qpud status = %+v", resp)
	}
}

func TestSplitexecServeSmoke(t *testing.T) {
	addr := startServer(t,
		regexp.MustCompile(`serving split-execution solves on (\S+)`),
		"splitexec", "serve", "-addr", "127.0.0.1:0", "-hosts", "2", "-devices", "1",
		"-m", "4", "-ncols", "4", "-sweeps", "32")
	c, err := service.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	c.SetTimeout(30 * time.Second)
	q := qubo.NewQUBO(3)
	q.Set(0, 0, 1)
	q.Set(0, 1, -2)
	q.Set(1, 2, -2)
	resp, err := c.Solve(q)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !resp.OK || len(resp.Binary) != 3 || resp.Reads < 1 {
		t.Errorf("solve response = %+v", resp)
	}
	if got := q.Energy([]int8{int8(resp.Binary[0]), int8(resp.Binary[1]), int8(resp.Binary[2])}); got != resp.Energy {
		t.Errorf("reported energy %v != recomputed %v", resp.Energy, got)
	}
}

// writeScenario drops a small scenario file for the workload subcommands.
func writeScenario(t *testing.T, jobs int, rate float64, hosts int) string {
	t.Helper()
	sc := fmt.Sprintf(`{
  "name": "smoke",
  "seed": 7,
  "arrival": {"kind": "poisson", "rate": %g},
  "mix": [
    {"name": "small", "weight": 3, "profile": {"preProcess": "1ms", "qpuService": "400µs", "postProcess": "200µs"}},
    {"name": "large", "weight": 1, "dist": "exp", "profile": {"preProcess": "2ms", "qpuService": "800µs"}}
  ],
  "system": {"kind": "shared", "hosts": %d},
  "horizon": {"jobs": %d}
}`, rate, hosts, jobs)
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(sc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSplitexecSimulateSmoke(t *testing.T) {
	path := writeScenario(t, 5000, 800, 4)
	events := filepath.Join(t.TempDir(), "events.log")
	out := run(t, "splitexec", "simulate", "-scenario", path, "-events", events)
	for _, want := range []string{"scenario: smoke", "simulated 5000 jobs", "sojourn", "throughput", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	log, err := os.ReadFile(events)
	if err != nil {
		t.Fatalf("event log: %v", err)
	}
	// 5 events per job: arrive, start, qpu+, qpu-, done.
	if lines := bytes.Count(log, []byte("\n")); lines != 5*5000 {
		t.Errorf("event log holds %d lines, want %d", lines, 5*5000)
	}
	// JSON mode must emit a decodable result.
	var r struct {
		Jobs int `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(run(t, "splitexec", "simulate", "-scenario", path, "-json")), &r); err != nil {
		t.Fatalf("simulate -json output not JSON: %v", err)
	}
	if r.Jobs != 5000 {
		t.Errorf("simulate -json jobs = %d", r.Jobs)
	}
}

// TestSplitexecPlanSmoke drives the capacity planner end to end: table
// output with a cheapest satisfying configuration and a failing cheaper
// neighbor, plus decodable JSON with the same verdict.
func TestSplitexecPlanSmoke(t *testing.T) {
	path := writeScenario(t, 8000, 1200, 1)
	out := run(t, "splitexec", "plan", "-scenario", path,
		"-p99", "25ms", "-hosts", "1:6", "-kinds", "shared,dedicated", "-policies", "all")
	for _, want := range []string{"cheapest satisfying configuration:", "meets SLO", "next-cheaper neighbor fails:"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	var p struct {
		Best *struct {
			Kind   string  `json:"kind"`
			Hosts  int     `json:"hosts"`
			Policy string  `json:"policy"`
			Cost   float64 `json:"cost"`
			Meets  bool    `json:"meets"`
		} `json:"best"`
		Evaluated []struct {
			Meets bool `json:"meets"`
		} `json:"evaluated"`
	}
	jsonOut := run(t, "splitexec", "plan", "-scenario", path,
		"-p99", "25ms", "-hosts", "1:6", "-policies", "fifo,priority", "-json")
	if err := json.Unmarshal([]byte(jsonOut), &p); err != nil {
		t.Fatalf("plan -json output not JSON: %v\n%s", err, jsonOut)
	}
	if p.Best == nil || !p.Best.Meets || p.Best.Hosts < 1 {
		t.Errorf("plan -json best = %+v", p.Best)
	}
	if len(p.Evaluated) == 0 {
		t.Error("plan -json evaluated no candidates")
	}
}

// TestSplitexecStormQuick replays the cheapest corpus scenario through the
// full predict→replay→judge pipeline over live TCP — the exact invocation the
// CI smoke job runs — and pins the JSON report's shape and verdict.
func TestSplitexecStormQuick(t *testing.T) {
	out := run(t, "splitexec", "storm", "-dir", "../scenarios", "-quick", "-json")
	var rep struct {
		Pass      bool `json:"pass"`
		Scenarios []struct {
			Name      string  `json:"name"`
			Pass      bool    `json:"pass"`
			Ratio     float64 `json:"ratio"`
			Jobs      int     `json:"jobs"`
			Failed    int     `json:"failed"`
			Submitted int     `json:"submitted"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("storm -json output not JSON: %v\n%s", err, out)
	}
	if !rep.Pass || len(rep.Scenarios) != 1 {
		t.Fatalf("storm -quick report: %s", out)
	}
	s := rep.Scenarios[0]
	if s.Name != "quick-check" || !s.Pass || s.Ratio <= 0 {
		t.Errorf("quick scenario verdict: %+v", s)
	}
	if s.Jobs+s.Failed != 60 {
		t.Errorf("quick-check ledger %d + %d != 60 admitted", s.Jobs, s.Failed)
	}
}

// TestSplitexecLoadgenSmoke drives the full open-system loop over TCP: a
// live `splitexec serve`, the loadgen subcommand replaying a scenario
// against it, and the serve process's JSON drain report on SIGTERM.
func TestSplitexecLoadgenSmoke(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "splitexec"), "serve",
		"-addr", "127.0.0.1:0", "-hosts", "2", "-devices", "1",
		"-m", "4", "-ncols", "4", "-sweeps", "16", "-queue", "64")
	var buf bytes.Buffer
	var mu sync.Mutex
	cmd.Stdout = &lockedWriter{buf: &buf, mu: &mu}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting serve: %v", err)
	}
	killed := false
	t.Cleanup(func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrRe := regexp.MustCompile(`serving split-execution solves on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		m := addrRe.FindStringSubmatch(buf.String())
		mu.Unlock()
		if m != nil {
			addr = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("serve never announced its address")
	}

	path := writeScenario(t, 40, 200, 2)
	out := run(t, "splitexec", "loadgen", "-scenario", path, "-addr", addr, "-conns", "8")
	for _, want := range []string{"measured 40 jobs (0 failed)", "sojourn (measured)", "sojourn (simulated)", "measured/simulated mean sojourn"} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen output missing %q:\n%s", want, out)
		}
	}

	// Graceful shutdown: the drain report must arrive as parseable JSON
	// with the replayed jobs accounted for.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	cmd.Wait()
	killed = true
	mu.Lock()
	output := buf.String()
	mu.Unlock()
	i := strings.Index(output, "{")
	if i < 0 {
		t.Fatalf("no JSON drain report in serve output:\n%s", output)
	}
	var rep struct {
		Jobs    int `json:"jobs"`
		Sojourn struct {
			N    int   `json:"n"`
			Mean int64 `json:"mean"`
		} `json:"sojourn"`
	}
	if err := json.Unmarshal([]byte(output[i:]), &rep); err != nil {
		t.Fatalf("drain report not JSON: %v\n%s", err, output[i:])
	}
	if rep.Jobs != 40 || rep.Sojourn.N != 40 || rep.Sojourn.Mean <= 0 {
		t.Errorf("drain report = %+v, want 40 jobs with a positive mean sojourn", rep)
	}
}
