// Command aspeneval parses and evaluates ASPEN performance models: either
// one of the paper's built-in stage listings (Figs. 6–8) or a model file,
// against either the paper's Fig. 5 machine (SimpleNode) or a machine
// declared in the same file.
//
// Usage:
//
//	aspeneval -stage 1 -param LPS=30
//	aspeneval -stage 2 -param Accuracy=99 -param Success=0.7
//	aspeneval -file model.aspen -machine MyMachine -param N=64
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/machine"
)

// paramList collects repeated -param NAME=VALUE flags.
type paramList map[string]float64

func (p paramList) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p paramList) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[parts[0]] = v
	return nil
}

func main() {
	params := paramList{}
	var (
		stage       = flag.Int("stage", 0, "evaluate the paper's stage listing (1, 2 or 3)")
		file        = flag.String("file", "", "evaluate a model from this ASPEN file")
		modelName   = flag.String("model", "", "model name when the file has several")
		machineName = flag.String("machine", "", "machine declared in the file (default: paper's SimpleNode)")
		host        = flag.String("host", "", "socket servicing flops/loads/stores (default: first)")
		overlap     = flag.Bool("overlap", false, "assume perfect overlap within execute blocks (max instead of sum)")
	)
	flag.Var(params, "param", "parameter override NAME=VALUE (repeatable)")
	flag.Parse()

	model, spec := loadModelAndMachine(*stage, *file, *modelName, *machineName)

	opts := aspen.EvalOptions{Params: params, HostSocket: *host}
	if *host == "" && spec.Socket(machine.XeonE5_2680().Name) != nil {
		opts.HostSocket = machine.XeonE5_2680().Name
	}
	if *overlap {
		opts.Policy = aspen.Overlap
	}
	res, err := aspen.Evaluate(model, spec, opts)
	if err != nil {
		fail(err)
	}

	fmt.Printf("model %s on machine %s\n\n", res.Model, res.Machine)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  kernel\tblock\tresource\tamount\tseconds")
	for _, k := range res.Kernels {
		for _, b := range k.Blocks {
			for _, r := range b.Resources {
				fmt.Fprintf(w, "  %s\t%s\t%s\t%.6g\t%.6g\n", k.Name, b.Label, r.Verb, r.Amount, r.Seconds*b.Count)
			}
		}
		fmt.Fprintf(w, "  %s\t\t= subtotal\t\t%.6g\n", k.Name, k.Seconds)
	}
	w.Flush()

	fmt.Printf("\ntotal predicted runtime: %.6g s (%v)\n", res.TotalSeconds(), res.Total())
	by := res.ByVerb()
	verbs := make([]string, 0, len(by))
	for v := range by {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	fmt.Println("by resource class:")
	for _, v := range verbs {
		fmt.Printf("  %-14s %.6g s\n", v, by[v])
	}
}

func loadModelAndMachine(stage int, file, modelName, machineName string) (*aspen.ModelDecl, *aspen.MachineSpec) {
	var f *aspen.File
	switch {
	case stage >= 1 && stage <= 3:
		s1, s2, s3, err := core.ParseStageModels()
		if err != nil {
			fail(err)
		}
		spec := defaultMachine()
		switch stage {
		case 1:
			return s1, spec
		case 2:
			return s2, spec
		default:
			return s3, spec
		}
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			fail(err)
		}
		f, err = aspen.ParseWithIncludes(string(src), aspen.StdLoader)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -stage 1..3 or -file model.aspen"))
	}

	var model *aspen.ModelDecl
	switch {
	case modelName != "":
		for _, m := range f.Models {
			if m.Name == modelName {
				model = m
			}
		}
		if model == nil {
			fail(fmt.Errorf("model %q not found in file", modelName))
		}
	case len(f.Models) == 1:
		model = f.Models[0]
	default:
		fail(fmt.Errorf("file declares %d models; use -model", len(f.Models)))
	}

	if machineName != "" {
		spec, err := aspen.BuildMachine(f, machineName)
		if err != nil {
			fail(err)
		}
		return model, spec
	}
	return model, defaultMachine()
}

func defaultMachine() *aspen.MachineSpec {
	f, err := aspen.Parse(machine.SimpleNode().ToAspen())
	if err != nil {
		fail(err)
	}
	spec, err := aspen.BuildMachine(f, "SimpleNode")
	if err != nil {
		fail(err)
	}
	return spec
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "aspeneval: %v\n", err)
	os.Exit(1)
}
