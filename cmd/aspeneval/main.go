// Command aspeneval parses and evaluates ASPEN performance models: either
// one of the paper's built-in stage listings (Figs. 6–8) or a model file,
// against either the paper's Fig. 5 machine (SimpleNode) or a machine
// declared in the same file.
//
// Usage:
//
//	aspeneval -stage 1 -param LPS=30
//	aspeneval -stage 2 -param Accuracy=99 -param Success=0.7
//	aspeneval -file model.aspen -machine MyMachine -param N=64
//
// With one or more -sweep flags the command switches from single-point
// evaluation to a parallel design-space sweep over the cartesian product
// of the axes, printing a TSV table and the cheapest point:
//
//	aspeneval -stage 1 -sweep LPS=10:100:19
//	aspeneval -stage 3 -sweep LPS=log:1:1000:13 -sweep Success=0.5:0.9:5 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/dse"
	"github.com/splitexec/splitexec/internal/machine"
)

// paramList collects repeated -param NAME=VALUE flags.
type paramList map[string]float64

func (p paramList) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p paramList) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[parts[0]] = v
	return nil
}

// axisList collects repeated -sweep NAME=lo:hi:n / NAME=log:lo:hi:n flags.
type axisList []dse.Axis

func (a *axisList) String() string { return fmt.Sprint([]dse.Axis(*a)) }

func (a *axisList) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=lo:hi:n or NAME=log:lo:hi:n, got %q", s)
	}
	parts := strings.Split(spec, ":")
	logScale := false
	if len(parts) == 4 && parts[0] == "log" {
		logScale = true
		parts = parts[1:]
	}
	if len(parts) != 3 {
		return fmt.Errorf("want NAME=lo:hi:n or NAME=log:lo:hi:n, got %q", s)
	}
	lo, err1 := strconv.ParseFloat(parts[0], 64)
	hi, err2 := strconv.ParseFloat(parts[1], 64)
	n, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || n < 1 {
		return fmt.Errorf("bad axis spec %q", s)
	}
	values := dse.LinSpace(lo, hi, n)
	if logScale {
		if values = dse.LogSpace(lo, hi, n); values == nil {
			return fmt.Errorf("log axis %q needs positive bounds", s)
		}
	}
	*a = append(*a, dse.Axis{Name: name, Values: values})
	return nil
}

func main() {
	params := paramList{}
	axes := axisList{}
	var (
		stage       = flag.Int("stage", 0, "evaluate the paper's stage listing (1, 2 or 3)")
		file        = flag.String("file", "", "evaluate a model from this ASPEN file")
		modelName   = flag.String("model", "", "model name when the file has several")
		machineName = flag.String("machine", "", "machine declared in the file (default: paper's SimpleNode)")
		host        = flag.String("host", "", "socket servicing flops/loads/stores (default: first)")
		overlap     = flag.Bool("overlap", false, "assume perfect overlap within execute blocks (max instead of sum)")
		workers     = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
	)
	flag.Var(params, "param", "parameter override NAME=VALUE (repeatable)")
	flag.Var(&axes, "sweep", "sweep axis NAME=lo:hi:n or NAME=log:lo:hi:n (repeatable; switches to sweep mode)")
	flag.Parse()

	model, spec := loadModelAndMachine(*stage, *file, *modelName, *machineName)

	opts := aspen.EvalOptions{Params: params, HostSocket: *host}
	if *host == "" && spec.Socket(machine.XeonE5_2680().Name) != nil {
		opts.HostSocket = machine.XeonE5_2680().Name
	}
	if *overlap {
		opts.Policy = aspen.Overlap
	}

	if len(axes) > 0 {
		sweepModel(model, spec, opts, axes, *workers)
		return
	}
	res, err := aspen.Evaluate(model, spec, opts)
	if err != nil {
		fail(err)
	}

	fmt.Printf("model %s on machine %s\n\n", res.Model, res.Machine)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  kernel\tblock\tresource\tamount\tseconds")
	for _, k := range res.Kernels {
		for _, b := range k.Blocks {
			for _, r := range b.Resources {
				fmt.Fprintf(w, "  %s\t%s\t%s\t%.6g\t%.6g\n", k.Name, b.Label, r.Verb, r.Amount, r.Seconds*b.Count)
			}
		}
		fmt.Fprintf(w, "  %s\t\t= subtotal\t\t%.6g\n", k.Name, k.Seconds)
	}
	w.Flush()

	fmt.Printf("\ntotal predicted runtime: %.6g s (%v)\n", res.TotalSeconds(), res.Total())
	by := res.ByVerb()
	verbs := make([]string, 0, len(by))
	for v := range by {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	fmt.Println("by resource class:")
	for _, v := range verbs {
		fmt.Printf("  %-14s %.6g s\n", v, by[v])
	}
}

// sweepModel evaluates the model over the cartesian product of the axes on
// the parallel exploration engine and prints the table plus its minimum.
func sweepModel(model *aspen.ModelDecl, spec *aspen.MachineSpec, opts aspen.EvalOptions, axes []dse.Axis, workers int) {
	obj := dse.ModelObjective(model, spec, opts)
	tbl, err := dse.SweepOpt(obj, axes, dse.SweepOptions{Workers: workers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("# model %s on machine %s: %d-point sweep\n", model.Name, spec.Name, len(tbl.Rows))
	for _, ax := range axes {
		fmt.Printf("%s\t", ax.Name)
	}
	fmt.Println("predicted_s")
	for _, r := range tbl.Rows {
		for _, ax := range axes {
			fmt.Printf("%.6g\t", r.Params[ax.Name])
		}
		fmt.Printf("%.6g\n", r.Value)
	}
	best, err := tbl.ArgMin()
	if err != nil {
		fail(err)
	}
	fmt.Printf("# minimum %.6g s at %v\n", best.Value, best.Params)
}

func loadModelAndMachine(stage int, file, modelName, machineName string) (*aspen.ModelDecl, *aspen.MachineSpec) {
	var f *aspen.File
	switch {
	case stage >= 1 && stage <= 3:
		s1, s2, s3, err := core.ParseStageModels()
		if err != nil {
			fail(err)
		}
		spec := defaultMachine()
		switch stage {
		case 1:
			return s1, spec
		case 2:
			return s2, spec
		default:
			return s3, spec
		}
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			fail(err)
		}
		f, err = aspen.ParseWithIncludes(string(src), aspen.StdLoader)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -stage 1..3 or -file model.aspen"))
	}

	var model *aspen.ModelDecl
	switch {
	case modelName != "":
		for _, m := range f.Models {
			if m.Name == modelName {
				model = m
			}
		}
		if model == nil {
			fail(fmt.Errorf("model %q not found in file", modelName))
		}
	case len(f.Models) == 1:
		model = f.Models[0]
	default:
		fail(fmt.Errorf("file declares %d models; use -model", len(f.Models)))
	}

	if machineName != "" {
		spec, err := aspen.BuildMachine(f, machineName)
		if err != nil {
			fail(err)
		}
		return model, spec
	}
	return model, defaultMachine()
}

func defaultMachine() *aspen.MachineSpec {
	f, err := aspen.Parse(machine.SimpleNode().ToAspen())
	if err != nil {
		fail(err)
	}
	spec, err := aspen.BuildMachine(f, "SimpleNode")
	if err != nil {
		fail(err)
	}
	return spec
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "aspeneval: %v\n", err)
	os.Exit(1)
}
