// Command figures regenerates the data series behind every figure in the
// paper's evaluation (Fig. 9a, 9b, 9c) and the §3.3 stage-dominance summary,
// printing tab-separated tables ready for plotting.
//
// Usage:
//
//	figures -fig 9a            # stage-1 model + measured CMR series
//	figures -fig 9b -ps 0.7    # stage-2 time vs accuracy
//	figures -fig 9c            # stage-3 sort time vs size
//	figures -fig dominance     # per-stage totals and stage-1 share
//	figures -fig tts           # extension: TTS vs anneal duration (U-curve)
//	figures -fig dse           # extension: stage-1 sensitivity + budget crossover
//	figures -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/dse"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/schedule"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 9a, 9b, 9c, dominance, arch, tts, dse, all")
		maxN     = flag.Int("maxn", 100, "largest model-curve problem size")
		measure  = flag.Int("measure", 20, "largest size for wall-clock CMR measurement (fig 9a)")
		ps       = flag.Float64("ps", 0.7, "single-run success probability (fig 9b)")
		seed     = flag.Int64("seed", 1, "random seed")
		maxTries = flag.Int("tries", 10, "CMR restart budget")
		workers  = flag.Int("workers", 0, "worker pool size for sweeps and measurements (0 = all cores)")
	)
	flag.Parse()
	node := machine.SimpleNode()

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("9a", func() error { return fig9a(node, *maxN, *measure, *seed, *maxTries, *workers) })
	run("9b", func() error { return fig9b(node, *ps) })
	run("9c", func() error { return fig9c(node, *maxN, *seed) })
	run("dominance", func() error { return dominance(node, *ps) })
	run("arch", func() error { return architectures(node, *ps) })
	run("tts", func() error { return ttsCurve() })
	run("dse", func() error { return designSpace(node, *workers) })
}

// ttsCurve prints the time-to-solution U-curve across the hardware's anneal
// duration range (the §2.2 schedule extension).
func ttsCurve() error {
	gap := schedule.DefaultGap()
	lim := schedule.DW2Limits()
	perRead := 325 * time.Microsecond
	fmt.Println("# extension (§2.2): TTS vs linear anneal duration, pa=0.99")
	fmt.Printf("# gap model: Δ=%.3g at s*=%.2f; per-read overhead %v\n", gap.MinGap, gap.Position, perRead)
	fmt.Println("anneal_us\tps\treads\ttts_us")
	curve, err := schedule.SweepTTS(gap, 0.99, lim.MinDuration, lim.MaxDuration, 24, perRead)
	if err != nil {
		return err
	}
	for _, r := range curve {
		fmt.Printf("%.2f\t%.4f\t%d\t%.1f\n",
			float64(r.AnnealTime)/float64(time.Microsecond), r.Ps, r.Reads,
			float64(r.Total)/float64(time.Microsecond))
	}
	best, tts, err := schedule.OptimalAnnealTime(gap, 0.99, lim, perRead)
	if err != nil {
		return err
	}
	fmt.Printf("# optimum: %v anneal -> TTS %v (hardware default 20µs -> %v)\n",
		best.Round(time.Microsecond), tts.Round(time.Microsecond), defaultTTS(gap, perRead))
	fmt.Println()
	return nil
}

func defaultTTS(gap schedule.GapModel, perRead time.Duration) time.Duration {
	ps, err := schedule.SuccessProbability(schedule.Linear(20*time.Microsecond), gap)
	if err != nil {
		return 0
	}
	tts, err := schedule.TTS(20*time.Microsecond, ps, 0.99, perRead)
	if err != nil {
		return 0
	}
	return tts.Round(time.Microsecond)
}

// designSpace prints the DSE view of the stage-1 model: the LPS sweep, the
// sensitivity ranking at n=50, and the 1-second-budget crossover. All
// three run on the parallel exploration engine.
func designSpace(node machine.Node, workers int) error {
	f, err := aspen.Parse(node.ToAspen())
	if err != nil {
		return err
	}
	spec, err := aspen.BuildMachine(f, node.Name)
	if err != nil {
		return err
	}
	s1, _, _, err := core.ParseStageModels()
	if err != nil {
		return err
	}
	obj := dse.ModelObjective(s1, spec, aspen.EvalOptions{
		HostSocket: node.CPU.Name,
		Params:     map[string]float64{"M": 12, "N": 12},
	})
	pool := dse.SweepOptions{Workers: workers}
	fmt.Println("# extension (ref. [37]): design-space exploration of the stage-1 model")
	fmt.Println("LPS\tpredicted_s")
	tbl, err := dse.SweepOpt(obj, []dse.Axis{{Name: "LPS", Values: dse.LinSpace(10, 100, 10)}}, pool)
	if err != nil {
		return err
	}
	for _, r := range tbl.Rows {
		fmt.Printf("%.0f\t%.6g\n", r.Params["LPS"], r.Value)
	}
	sens, err := dse.SensitivitiesOpt(obj, map[string]float64{"LPS": 50, "M": 12, "N": 12}, 0.02, pool)
	if err != nil {
		return err
	}
	fmt.Println("# sensitivity at LPS=50 (elasticity d logT / d logp):")
	for _, s := range sens {
		fmt.Printf("# %6s\t%+.3f\n", s.Param, s.Elasticity)
	}
	budget := func(map[string]float64) (float64, error) { return 1.0, nil }
	n, err := dse.CrossoverOpt(obj, budget, "LPS", 1, 100, map[string]float64{"M": 12, "N": 12}, 1e-6, pool)
	if err != nil {
		return err
	}
	fmt.Printf("# stage-1 exceeds a 1-second budget beyond n = %.1f\n\n", n)
	return nil
}

// architectures compares the three Fig. 1 deployments on a stage-model-
// derived job profile (the Britt & Humble comparison the paper cites).
func architectures(node machine.Node, ps float64) error {
	pred := core.NewPredictor(node)
	s, err := pred.Predict(30, 0.99, ps)
	if err != nil {
		return err
	}
	init := node.QPU.Timings.ProcessorInitialize()
	profile := arch.JobProfile{
		PreProcess:  secsToDur(s.Stage1) - init, // classical part of stage 1
		Network:     10 * time.Microsecond,      // LAN one-way
		QPUService:  init + secsToDur(s.Stage2), // programming + annealing
		PostProcess: secsToDur(s.Stage3),
	}
	fmt.Println("# Fig 1(a/b/c): architecture comparison, 64 jobs of size n=30, 8 hosts")
	fmt.Println("# job profile from the stage models: pre-process", profile.PreProcess,
		"| QPU service", profile.QPUService)
	fmt.Println("architecture\tmakespan\tjobs_per_s\tspeedup_vs_a")
	rows, err := arch.Compare(profile, 64, 8)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%s\t%v\t%.3f\t%.2fx\n", r.System.Kind, r.Makespan, r.Throughput, r.Speedup)
	}
	fmt.Println()
	return nil
}

func secsToDur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func fig9a(node machine.Node, maxN, measure int, seed int64, tries, workers int) error {
	fmt.Println("# Fig 9(a): stage-1 time vs input size n (complete graph K_n)")
	fmt.Println("# model = ASPEN worst-case prediction (solid line)")
	fmt.Println("# measured = wall-clock Cai-Macready-Roy embedding on this host (dashed line)")
	if workers != 1 {
		fmt.Println("# note: measurements run concurrently; pass -workers 1 for contention-free timings")
	}
	fmt.Println("n\tmodel_s\tmeasured_s\tphys_qubits\tmax_chain")
	var ns []int
	for n := 1; n <= maxN; n += stepFor(n) {
		ns = append(ns, n)
	}
	pts, err := core.Fig9a(ns, node, core.Fig9aOptions{
		MeasureUpTo: measure,
		Seed:        seed,
		Embed:       embed.Options{MaxTries: tries},
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		if p.MeasuredOK {
			fmt.Printf("%d\t%.6g\t%.6g\t%d\t%d\n", p.N, p.ModelSeconds, p.MeasuredSecs, p.PhysicalQubits, p.MaxChain)
		} else {
			fmt.Printf("%d\t%.6g\t-\t-\t-\n", p.N, p.ModelSeconds)
		}
	}
	if k, r2, err := core.ScalingExponent(pts); err == nil {
		fmt.Printf("# model power-law fit: t ~ n^%.2f (R²=%.3f)\n", k, r2)
	}
	fmt.Println()
	return nil
}

func fig9b(node machine.Node, ps float64) error {
	fmt.Println("# Fig 9(b): stage-2 time vs desired accuracy pa")
	fmt.Printf("# single-run success probability ps = %v\n", ps)
	fmt.Println("accuracy\treads\tmodel_s")
	accs := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999}
	pts, err := core.Fig9b(accs, ps, node)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%.4f\t%d\t%.6g\n", p.Accuracy, p.Reads, p.ModelSeconds)
	}
	fmt.Println()
	return nil
}

func fig9c(node machine.Node, maxN int, seed int64) error {
	fmt.Println("# Fig 9(c): stage-3 (sort) time vs input size")
	fmt.Println("n\tresults\tmodel_s\tmeasured_s\tcomparisons")
	var ns []int
	for n := 1; n <= maxN; n += stepFor(n) {
		ns = append(ns, n)
	}
	pts, err := core.Fig9c(ns, node, seed)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%d\t%d\t%.6g\t%.6g\t%d\n", p.N, p.Results, p.ModelSeconds, p.MeasuredSecs, p.Comparisons)
	}
	fmt.Println()
	return nil
}

func dominance(node machine.Node, ps float64) error {
	fmt.Println("# §3.3: per-stage predicted time and stage-1 share (pa=0.99)")
	fmt.Println("n\tstage1_s\tstage2_s\tstage3_s\tstage1_share")
	rows, err := core.StageDominance([]int{5, 10, 20, 30, 50, 75, 100}, 0.99, ps, node)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%d\t%.6g\t%.6g\t%.6g\t%.6f\n",
			r.N, r.Stages.Stage1, r.Stages.Stage2, r.Stages.Stage3, r.Stage1Share)
	}
	fmt.Println()
	return nil
}

// stepFor thins out the sweep at large n to keep output compact.
func stepFor(n int) int {
	switch {
	case n < 10:
		return 1
	case n < 30:
		return 2
	case n < 60:
		return 5
	default:
		return 10
	}
}
