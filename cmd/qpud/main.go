// Command qpud serves a simulated quantum processing unit over TCP — the
// "quantum server" of the paper's client-server deployment (Fig. 1a).
// Clients program hardware Ising models and request annealing reads; the
// server enforces the Chimera topology and accounts modeled QPU time.
//
// Usage:
//
//	qpud -addr :7447 -m 12 -ncols 12 -sweeps 256
//
// Pair it with `splitexec-remote` (examples/remoteqpu) or any
// qpuserver.Client.
package main

import (
	"flag"
	"log"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qpuserver"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7447", "listen address")
		m        = flag.Int("m", 12, "Chimera rows M")
		ncols    = flag.Int("ncols", 12, "Chimera columns N")
		sweeps   = flag.Int("sweeps", 256, "annealer sweeps per read")
		validate = flag.Bool("validate", true, "reject programs that violate the topology")
		annealUs = flag.Float64("anneal", 20, "per-read anneal duration in µs (the device's programmed waveform length)")
		workers  = flag.Int("readworkers", 1, "concurrent readout workers per execute call (results are seed-deterministic at any count)")
		bitpar   = flag.Bool("bitparallel", false, "anneal 64 replicas per machine word (multi-spin coding); pays off at tens of reads per execute")
	)
	flag.Parse()

	timings := anneal.DW2Timings()
	if *annealUs > 0 {
		timings.AnnealTime = time.Duration(*annealUs * float64(time.Microsecond))
	}
	srv := qpuserver.NewServer(timings, anneal.SamplerOptions{Sweeps: *sweeps, BitParallel: *bitpar})
	srv.SetReadWorkers(*workers)
	srv.Logf = log.Printf
	if *validate {
		srv.Hardware = graph.Chimera{M: *m, N: *ncols, L: 4}.Graph()
		log.Printf("qpud: enforcing topology C(%d,%d,4)", *m, *ncols)
	}
	if err := srv.ListenAndLog(*addr); err != nil {
		log.Fatalf("qpud: %v", err)
	}
}
