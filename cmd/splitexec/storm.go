package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/splitexec/splitexec/internal/storm"
)

// runStorm is the `splitexec storm` subcommand: it soak-tests the scenario
// corpus — DES prediction, live TCP replay with fault injection, band
// verdict per scenario — and exits non-zero if any scenario fails.
func runStorm(args []string) {
	fs := flag.NewFlagSet("splitexec storm", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "scenarios", "scenario corpus directory (*.json; see docs/scenarios.md)")
		quick    = fs.Bool("quick", false, "run only the cheapest scenario (CI smoke)")
		scenario = fs.String("scenario", "", "run only the named corpus scenario (name or file)")
		attempts = fs.Int("attempts", 3, "per-scenario live-replay attempts before failing the band check")
		asJSON   = fs.Bool("json", false, "emit the pass/fail report as JSON instead of a table")
		quiet    = fs.Bool("quiet", false, "suppress per-attempt progress lines")
		obsAddr  = fs.String("obs", "", "serve the admin endpoint on this address during replays and self-scrape /metrics + /healthz as part of the verdict (use 127.0.0.1:0; empty = off)")
	)
	fs.Parse(args)

	opts := storm.Options{Dir: *dir, Quick: *quick, Scenario: *scenario, Attempts: *attempts, ObsAddr: *obsAddr}
	if !*quiet && !*asJSON {
		opts.Log = os.Stderr
	}
	rep, err := storm.Run(opts)
	if err != nil {
		log.Fatalf("splitexec storm: %v", err)
	}

	if *asJSON {
		out, err := storm.EncodeReport(rep)
		if err != nil {
			log.Fatalf("splitexec storm: %v", err)
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, s := range rep.Scenarios {
			verdict := "PASS"
			if !s.Pass {
				verdict = "FAIL"
			}
			extra := ""
			if s.Stolen > 0 || s.Redispatched > 0 {
				extra = fmt.Sprintf(" stolen=%d redispatched=%d", s.Stolen, s.Redispatched)
			}
			if s.Obs != "" {
				extra += " obs=" + s.Obs
			}
			fmt.Printf("%s %-24s p99 %v vs DES %v (%.2fx, band [%.2f, %.2f]) jobs=%d failed=%d retries=%d drops=%d attempts=%d%s\n",
				verdict, s.Name, s.LiveP99.Round(time.Microsecond), s.DESP99.Round(time.Microsecond),
				s.Ratio, s.Band.Lo, s.Band.Hi, s.Jobs, s.Failed, s.Retries, s.Drops, s.Attempts, extra)
			if s.Error != "" {
				fmt.Printf("     %s: %s\n", s.Name, s.Error)
			}
		}
		if rep.Pass {
			fmt.Printf("storm: %d scenario(s) passed\n", len(rep.Scenarios))
		} else {
			fmt.Printf("storm: FAILED\n")
		}
	}
	if !rep.Pass {
		os.Exit(1)
	}
}
