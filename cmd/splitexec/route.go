package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/router"
)

// runRoute is the `splitexec route` subcommand: the sharded front-end tier.
// It speaks the same length-prefixed wire protocol as `splitexec serve`,
// consistent-hash routes each request to one of N backing service instances
// (by embedding-cache key for QUBO jobs, by class for profile jobs), steals
// work off backlogged shards, and health-checks the membership so a dead
// shard's traffic re-dispatches to the survivors.
func runRoute(args []string) {
	fs := flag.NewFlagSet("splitexec route", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7465", "listen address for the front end")
		shards   = fs.String("shards", "", "comma-separated backing service addresses (required)")
		clients  = fs.Int("clients", 0, "dispatch connections per shard (0 = default)")
		queue    = fs.Int("queue", 0, "per-shard queue depth (0 = default); full queues apply backpressure")
		steal    = fs.Int("steal", 0, "backlog threshold above which jobs steal to the shortest queue (0 = default)")
		retries  = fs.Int("retries", 0, "re-dispatch budget per job on shard loss (0 = default)")
		backoff  = fs.Duration("backoff", 0, "base backoff between re-dispatch attempts (0 = default)")
		ping     = fs.Duration("ping", 0, "health-check interval (0 = default, negative disables)")
		pingFail = fs.Int("pingfail", 0, "consecutive ping failures before a shard is marked down (0 = default)")
		pingSucc = fs.Int("pingsucc", 0, "consecutive ping successes before a down shard is re-admitted (0 = default)")
		replicas = fs.Int("replicas", 0, "virtual nodes per shard on the hash ring (0 = default)")
		timeout  = fs.Duration("timeout", 0, "per-request shard I/O timeout (0 = none)")
		obsAddr  = fs.String("obs", "", "HTTP admin endpoint address (/metrics /healthz /jobz /varz /debug/pprof; empty = off)")
		report   = fs.Duration("report", 0, "log a JSON dispatch-ledger snapshot to stderr at this interval (0 = off)")
	)
	fs.Parse(args)

	var members []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			members = append(members, s)
		}
	}
	if len(members) == 0 {
		log.Fatalf("splitexec route: -shards requires at least one backing service address")
	}

	var scope *obs.Scope
	if *obsAddr != "" {
		scope = obs.NewScope()
	}
	rt, err := router.New(router.Options{
		Shards:          members,
		ClientsPerShard: *clients,
		QueueDepth:      *queue,
		StealThreshold:  *steal,
		MaxRetries:      *retries,
		Backoff:         *backoff,
		PingEvery:       *ping,
		PingFailLimit:   *pingFail,
		PingSuccLimit:   *pingSucc,
		Replicas:        *replicas,
		Timeout:         *timeout,
		Obs:             scope,
	})
	if err != nil {
		log.Fatalf("splitexec route: %v", err)
	}
	// /healthz on the router answers for the membership: all shards down is
	// an outage even while the process itself is alive.
	admin := startObs(*obsAddr, scope, obs.HealthCheck{Name: "shards", Check: func() error {
		for _, up := range rt.Up() {
			if up {
				return nil
			}
		}
		return fmt.Errorf("no shards up")
	}})
	bound, err := rt.Listen(*addr)
	if err != nil {
		log.Fatalf("splitexec route: %v", err)
	}
	log.Printf("splitexec: routing over %d shard(s) on %s (%s)",
		len(members), bound, strings.Join(members, ", "))

	// Route until interrupted, then drain and report the dispatch ledger.
	stopReport := startPeriodicReport(*report, "route", func() any { return rt.Stats() })
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for range t.C {
			up := rt.Up()
			live := 0
			for _, ok := range up {
				if ok {
					live++
				}
			}
			if live < len(up) {
				log.Printf("splitexec route: %d/%d shards up %v", live, len(up), up)
			}
		}
	}()
	<-sig
	log.Printf("splitexec: draining router")
	stopReport()
	rt.Drain()
	if err := admin.Close(); err != nil {
		log.Printf("splitexec route: closing admin endpoint: %v", err)
	}
	out, err := json.MarshalIndent(rt.Stats(), "", "  ")
	if err != nil {
		log.Fatalf("splitexec route: encoding stats: %v", err)
	}
	fmt.Printf("%s\n", out)
}
