package main

import (
	"encoding/json"
	"log"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/workload"
)

// startObs brings up the opt-in HTTP admin endpoint shared by the serving
// subcommands: /metrics, /healthz, /jobz, /varz and /debug/pprof. An empty
// addr (the default) means telemetry stays off. The returned server's Close
// is nil-safe, so drain paths call it unconditionally.
func startObs(addr string, scope *obs.Scope, health ...obs.HealthCheck) *obs.Server {
	if addr == "" {
		return nil
	}
	srv, err := obs.Serve(addr, obs.ServerOptions{Scope: scope, Health: health})
	if err != nil {
		log.Fatalf("splitexec: admin endpoint: %v", err)
	}
	log.Printf("splitexec: admin endpoint on http://%s (/metrics /healthz /jobz /varz /debug/pprof)", srv.Addr())
	return srv
}

// armDrift closes the predicted→measured loop for a serving deployment: it
// simulates the scenario's DES twin and arms the scope's drift alarm with
// the per-class sojourn predictions wrapped in the scenario's declared
// acceptance band. Scenarios without a band (or without usable predictions)
// leave the alarm off — /healthz then reports liveness only.
func armDrift(scope *obs.Scope, sc *workload.Scenario) {
	if scope == nil || sc == nil || sc.Band == nil {
		return
	}
	pred, err := des.Simulate(sc, des.Options{})
	if err != nil {
		log.Printf("splitexec: drift alarm disabled: DES prediction failed: %v", err)
		return
	}
	alarm := obs.NewDriftAlarm(pred.SojournBands(*sc.Band), obs.DriftOptions{
		Gauge: scope.Reg.Gauge("splitexec_drift_alarm"),
	})
	if alarm == nil {
		log.Printf("splitexec: drift alarm disabled: no usable per-class predictions")
		return
	}
	scope.SetDrift(alarm)
	log.Printf("splitexec: drift alarm armed from scenario %q (%d classes, band [%.2f, %.2f])",
		name(sc), len(sc.Mix), sc.Band.Lo, sc.Band.Hi)
}

// startPeriodicReport logs fn()'s JSON to stderr every interval until the
// returned stop runs — the `-report` progress stream of the serving
// subcommands. Stderr, not stdout: the final drain report owns stdout, and
// interleaving snapshots there would corrupt piped JSON.
func startPeriodicReport(every time.Duration, what string, fn func() any) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				out, err := json.Marshal(fn())
				if err != nil {
					log.Printf("splitexec: %s snapshot: %v", what, err)
					continue
				}
				log.Printf("splitexec: %s snapshot: %s", what, out)
			}
		}
	}()
	return func() { close(done) }
}
