package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/splitexec/splitexec/internal/benchio"
)

// runBench is the `splitexec bench` subcommand: it measures the kernel
// benchmark suite (internal/benchio) and either records a schema-versioned
// BENCH_<UTC-date>.json baseline or compares the run against the newest
// committed one — the repository's benchmark trajectory. Comparison is
// warn-only by default (machines differ); -strict makes warnings fatal for
// use on a pinned reference machine.
func runBench(args []string) {
	fs := flag.NewFlagSet("splitexec bench", flag.ExitOnError)
	var (
		write    = fs.Bool("write", false, "write the run as BENCH_<UTC-date>.json (new baseline)")
		out      = fs.String("out", "", "explicit output path for -write (default the dated name in the current directory)")
		baseline = fs.String("baseline", "", "baseline report to compare against (default: newest BENCH_*.json here)")
		warn     = fs.Float64("warn", 1.25, "slowdown ratio that flags a benchmark in the comparison")
		strict   = fs.Bool("strict", false, "exit nonzero when any benchmark crosses -warn")
		quick    = fs.Bool("quick", false, "CI smoke budget (~10ms per benchmark) instead of baseline quality")
		asJSON   = fs.Bool("json", false, "emit the run (and comparison deltas) as JSON instead of tables")
	)
	fs.Parse(args)

	opts := benchio.SuiteOptions{}
	if !*asJSON {
		opts.Log = log.Printf
	}
	if *quick {
		opts.Time = 10 * time.Millisecond
	}
	rep := benchio.Run(opts)

	if *write {
		path := *out
		if path == "" {
			path = benchio.DefaultFilename(time.Now())
		}
		if err := rep.WriteFile(path); err != nil {
			log.Fatalf("splitexec bench: %v", err)
		}
		log.Printf("splitexec bench: wrote %s", path)
	}

	base := *baseline
	if base == "" {
		base = benchio.FindBaseline(".")
	}
	var deltas []benchio.Delta
	var old *benchio.Report
	if base != "" {
		var err error
		old, err = benchio.Load(base)
		if err != nil {
			log.Fatalf("splitexec bench: %v", err)
		}
		deltas = benchio.Compare(old, rep, *warn)
	}

	if *asJSON {
		payload := struct {
			Report   *benchio.Report `json:"report"`
			Baseline string          `json:"baseline,omitempty"`
			Deltas   []benchio.Delta `json:"deltas,omitempty"`
		}{rep, base, deltas}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			log.Fatalf("splitexec bench: %v", err)
		}
	} else if old != nil {
		fmt.Printf("comparing against %s\n\n", base)
		if err := benchio.WriteComparison(os.Stdout, old, rep, deltas); err != nil {
			log.Fatalf("splitexec bench: %v", err)
		}
	} else {
		log.Printf("splitexec bench: no baseline found (run with -write to record one)")
	}

	if *strict && benchio.AnyWarn(deltas) {
		log.Fatalf("splitexec bench: benchmarks regressed beyond %.2fx (strict mode)", *warn)
	}
}
