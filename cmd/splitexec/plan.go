package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/splitexec/splitexec/internal/plan"
	"github.com/splitexec/splitexec/internal/sched"
)

// runPlan is the `splitexec plan` subcommand: the SLO-driven capacity
// planner. It inverts the workload engine — given a scenario and a target
// (p99/mean sojourn, utilization ceilings), it searches
// {shards × hosts × topology × policy} with the discrete-event simulator and prints
// the cheapest configuration that meets the SLO, together with the
// next-cheaper neighbor that does not.
func runPlan(args []string) {
	fs := flag.NewFlagSet("splitexec plan", flag.ExitOnError)
	var (
		scenarioPath = fs.String("scenario", "", "scenario JSON file (required; see docs/workloads.md)")
		seed         = fs.Int64("seed", 0, "override the scenario's seed (0 keeps the file's)")
		p99          = fs.Duration("p99", 0, "p99 sojourn SLO (e.g. 10ms; 0 = unconstrained)")
		mean         = fs.Duration("mean", 0, "mean sojourn SLO (0 = unconstrained)")
		maxHost      = fs.Float64("maxhostbusy", 0, "host utilization ceiling in (0,1] (0 = unconstrained)")
		maxQPU       = fs.Float64("maxqpubusy", 0, "QPU utilization ceiling in (0,1] (0 = unconstrained)")
		hostsFlag    = fs.String("hosts", "1:16", "candidate host counts: comma list and/or a:b ranges (e.g. 1,2,4:8)")
		shardsFlag   = fs.String("shards", "", "candidate shard counts, same syntax as -hosts (default: the scenario's topology)")
		kindsFlag    = fs.String("kinds", "", "comma-separated deployment kinds to search (default: the scenario's)")
		policiesFlag = fs.String("policies", "", "comma-separated policies to search, or \"all\" (default: the scenario's)")
		jobs         = fs.Int("jobs", 0, "override the job horizon for the planning simulations (p99 needs >= ~1e4)")
		hostCost     = fs.Float64("hostcost", 1, "relative cost of one host")
		qpuCost      = fs.Float64("qpucost", 3, "relative cost of one QPU")
		rebalance    = fs.Bool("rebalance", false, "emit the ordered add/warm/drain membership transition from the scenario's topology to the cheapest satisfying one")
		asJSON       = fs.Bool("json", false, "emit the plan as JSON instead of a table")
	)
	fs.Parse(args)
	sc := loadScenario(*scenarioPath, *seed)

	hosts, err := parseHosts(*hostsFlag)
	if err != nil {
		log.Fatalf("splitexec plan: %v", err)
	}
	space := plan.Space{Hosts: hosts}
	if *shardsFlag != "" {
		shards, err := parseHosts(*shardsFlag)
		if err != nil {
			log.Fatalf("splitexec plan: -shards: %v", err)
		}
		space.Shards = shards
	}
	if *kindsFlag != "" {
		space.Kinds = strings.Split(*kindsFlag, ",")
	}
	switch {
	case *policiesFlag == "all":
		space.Policies = sched.Policies()
	case *policiesFlag != "":
		for _, p := range strings.Split(*policiesFlag, ",") {
			space.Policies = append(space.Policies, sched.Policy(strings.TrimSpace(p)))
		}
	}
	target := plan.Target{
		P99Sojourn:  *p99,
		MeanSojourn: *mean,
		MaxHostBusy: *maxHost,
		MaxQPUBusy:  *maxQPU,
	}
	opts := plan.Options{
		Costs:       plan.Costs{Host: *hostCost, QPU: *qpuCost},
		HorizonJobs: *jobs,
	}
	start := time.Now()
	if *rebalance {
		rb, err := plan.Rebalance(sc, target, space, opts)
		if err != nil {
			log.Fatalf("splitexec plan: %v", err)
		}
		printRebalance(rb, *asJSON, time.Since(start))
		return
	}
	p, err := plan.Capacity(sc, target, space, opts)
	if err != nil {
		log.Fatalf("splitexec plan: %v", err)
	}
	wall := time.Since(start)

	if *asJSON {
		printJSON(p)
		return
	}
	fmt.Printf("scenario: %s — planned over %d candidates in %v\n\n",
		name(sc), len(p.Evaluated), wall.Round(time.Millisecond))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  kind\tpolicy\tshards\thosts\tqpus\tcost\tp99 sojourn\tmean sojourn\thost util\tqpu util\tverdict\n")
	for _, c := range p.Evaluated {
		verdict := "meets SLO"
		if !c.Meets {
			verdict = strings.Join(c.Unmet, "; ")
		}
		fmt.Fprintf(w, "  %s\t%s\t%d\t%d\t%d\t%.1f\t%v\t%v\t%.2f\t%.2f\t%s\n",
			c.Kind, c.Policy, c.Shards, c.Hosts, c.QPUs, c.Cost,
			c.Result.Sojourn.P99.Round(time.Microsecond),
			c.Result.Sojourn.Mean.Round(time.Microsecond),
			c.Result.HostBusy, c.Result.QPUBusy, verdict)
	}
	w.Flush()
	fmt.Println()
	if p.Best == nil {
		fmt.Println("no configuration in the search space meets the target")
		os.Exit(1)
	}
	fmt.Printf("cheapest satisfying configuration: %s/%s shards=%d hosts=%d qpus=%d (cost %.1f, p99 %v)\n",
		p.Best.Kind, p.Best.Policy, p.Best.Shards, p.Best.Hosts, p.Best.QPUs, p.Best.Cost,
		p.Best.Result.Sojourn.P99.Round(time.Microsecond))
	if p.Best.Analytic != nil {
		fmt.Printf("  M/M/c cross-check: rho=%.3f, analytic mean sojourn %v vs simulated %v\n",
			p.Best.Analytic.Rho, p.Best.Analytic.SojournMean.Round(time.Microsecond),
			p.Best.Result.Sojourn.Mean.Round(time.Microsecond))
	}
	if p.NextCheaper != nil {
		fmt.Printf("  next-cheaper neighbor fails: %s/%s shards=%d hosts=%d (cost %.1f) — %s\n",
			p.NextCheaper.Kind, p.NextCheaper.Policy, p.NextCheaper.Shards, p.NextCheaper.Hosts,
			p.NextCheaper.Cost, strings.Join(p.NextCheaper.Unmet, "; "))
	}
}

// printRebalance renders the ordered membership transition.
func printRebalance(rb *plan.RebalanceResult, asJSON bool, wall time.Duration) {
	if asJSON {
		printJSON(rb)
		return
	}
	fmt.Printf("scenario: %s — rebalance %d -> %d shard(s), planned in %v\n\n",
		rb.Scenario, rb.From, rb.To, wall.Round(time.Millisecond))
	if len(rb.Steps) == 0 {
		fmt.Println("already at the cheapest satisfying topology — nothing to do")
	} else {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "  step\taction\tshard\tserving\tkeys moved\tp99 sojourn\tmean sojourn\tverdict\n")
		for i, s := range rb.Steps {
			moved, p99, mean, verdict := "-", "-", "-", "-"
			if s.MovedFrac > 0 {
				moved = fmt.Sprintf("%.1f%%", 100*s.MovedFrac)
			}
			if s.Result != nil {
				p99 = s.Result.Sojourn.P99.Round(time.Microsecond).String()
				mean = s.Result.Sojourn.Mean.Round(time.Microsecond).String()
				verdict = "meets SLO"
				if !s.Meets {
					verdict = strings.Join(s.Unmet, "; ")
				}
			}
			fmt.Fprintf(w, "  %d\t%s\tshard-%d\t%d\t%s\t%s\t%s\t%s\n",
				i+1, s.Action, s.Shard, s.Shards, moved, p99, mean, verdict)
		}
		w.Flush()
		fmt.Println()
	}
	fmt.Printf("destination: %s/%s shards=%d hosts=%d qpus=%d (cost %.1f, p99 %v)\n",
		rb.Final.Kind, rb.Final.Policy, rb.Final.Shards, rb.Final.Hosts, rb.Final.QPUs,
		rb.Final.Cost, rb.Final.Result.Sojourn.P99.Round(time.Microsecond))
	if rb.NextCheaper != nil {
		fmt.Printf("  next-cheaper neighbor fails: shards=%d hosts=%d (cost %.1f) — %s\n",
			rb.NextCheaper.Shards, rb.NextCheaper.Hosts, rb.NextCheaper.Cost,
			strings.Join(rb.NextCheaper.Unmet, "; "))
	}
}

// parseHosts decodes "1,2,4:8" into a host-count list.
func parseHosts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if a, b, ok := strings.Cut(part, ":"); ok {
			lo, err1 := strconv.Atoi(a)
			hi, err2 := strconv.Atoi(b)
			if err1 != nil || err2 != nil || lo > hi {
				return nil, fmt.Errorf("bad host range %q (want a:b with a <= b)", part)
			}
			for h := lo; h <= hi; h++ {
				out = append(out, h)
			}
			continue
		}
		h, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad host count %q", part)
		}
		out = append(out, h)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -hosts list")
	}
	return out, nil
}
