// Command splitexec solves a classical optimization problem on the modeled
// split-execution (CPU + quantum annealer) system and reports the solution
// together with the per-stage time breakdown the paper analyzes.
//
// Usage:
//
//	splitexec -problem maxcut -n 12 -seed 1
//	splitexec -problem partition -n 16 -accuracy 0.999
//	splitexec -problem random -n 10 -density 0.4 -faults 0.02
//
// The serve subcommand runs the concurrent multi-QPU dispatch service
// behind a TCP front-end instead of solving one local problem:
//
//	splitexec serve -addr :7464 -hosts 4 -devices 1
//
// The route subcommand federates several serve instances behind one
// consistent-hash sharded front end speaking the same wire protocol
// (docs/cluster.md): QUBO jobs shard by embedding-cache key, profile jobs
// by class, backlogged shards shed work to the shortest queue, and health
// checks evict dead shards so their traffic re-dispatches:
//
//	splitexec route -addr :7465 -shards 127.0.0.1:7464,127.0.0.1:7466
//
// The admin subcommand drives a running route tier's elastic membership
// remotely over the same wire protocol: add joins a new shard (warming its
// embedding cache before ownership flips), drain retires one gracefully,
// remove evicts it crash-style, and status prints the membership table and
// epoch (docs/cluster.md):
//
//	splitexec admin -addr 127.0.0.1:7465 add 127.0.0.1:7468
//	splitexec admin -addr 127.0.0.1:7465 status
//
// The simulate, loadgen and plan subcommands drive the open-system
// workload engine from a declarative scenario file (docs/workloads.md):
// simulate runs the discrete-event simulator in virtual time, loadgen
// replays the same scenario against a live service and prints measured vs
// simulated, and plan inverts the models into a provisioning decision —
// the cheapest {hosts, fleet, policy} meeting an SLO (docs/planning.md):
//
//	splitexec simulate -scenario burst.json
//	splitexec loadgen -scenario burst.json -addr 127.0.0.1:7464
//	splitexec plan -scenario burst.json -p99 10ms -hosts 1:16 -policies all
//
// The storm subcommand soak-tests the adversarial scenario corpus: each
// scenario is predicted with the simulator, replayed live over loopback TCP
// with its fault regime injected, and judged against its declared
// DES-vs-live acceptance band (docs/scenarios.md):
//
//	splitexec storm -dir scenarios
//	splitexec storm -dir scenarios -quick -json
//
// The bench subcommand records the kernel benchmark suite as a
// schema-versioned BENCH_<UTC-date>.json baseline, or compares a fresh run
// against the newest committed one (the benchmark trajectory CI watches):
//
//	splitexec bench -write
//	splitexec bench -baseline BENCH_2026-08-07.json -warn 1.25
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/schedule"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "route":
			runRoute(os.Args[2:])
			return
		case "admin":
			runAdmin(os.Args[2:])
			return
		case "simulate":
			runSimulate(os.Args[2:])
			return
		case "loadgen":
			runLoadgen(os.Args[2:])
			return
		case "plan":
			runPlan(os.Args[2:])
			return
		case "storm":
			runStorm(os.Args[2:])
			return
		case "bench":
			runBench(os.Args[2:])
			return
		}
	}
	var (
		problem  = flag.String("problem", "maxcut", "problem type: maxcut, partition, vertexcover, independentset, random")
		n        = flag.Int("n", 10, "problem size (vertices or values)")
		density  = flag.Float64("density", 0.3, "edge/coupling density for random inputs")
		seed     = flag.Int64("seed", 1, "random seed")
		accuracy = flag.Float64("accuracy", 0.99, "target solution accuracy pa")
		ps       = flag.Float64("ps", 0.7, "assumed single-run success probability")
		m        = flag.Int("m", 8, "Chimera rows M")
		ncols    = flag.Int("ncols", 8, "Chimera columns N")
		faults   = flag.Float64("faults", 0, "qubit fault rate")
		sweeps   = flag.Int("sweeps", 256, "annealer sweeps per read")
		quantize = flag.Bool("quantize", false, "apply DAC control-precision quantization")
		annealUs = flag.Float64("anneal", 0, "linear anneal duration in µs; >0 derives ps from the Landau-Zener schedule model instead of -ps")
		gapMin   = flag.Float64("gap", 0.15, "minimum spectral gap for the schedule model (with -anneal)")
		gapPos   = flag.Float64("gappos", 0.65, "anneal fraction of the gap minimum (with -anneal)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	node := machine.SimpleNode()
	node.QPU.Topology = graph.Chimera{M: *m, N: *ncols, L: 4}
	if *faults > 0 {
		node.QPU.Faults = graph.RandomFaults(node.QPU.Topology.Graph(), *faults, *faults/4, rng)
	}

	q, describe, check := buildProblem(*problem, *n, *density, rng)

	cfg := core.Config{
		Node:            node,
		Accuracy:        *accuracy,
		SuccessProb:     *ps,
		Seed:            *seed,
		Sampler:         anneal.SamplerOptions{Sweeps: *sweeps},
		Embed:           embed.Options{MaxTries: 20},
		QuantizeControl: *quantize,
	}
	if *annealUs > 0 {
		sc := schedule.Linear(time.Duration(*annealUs * float64(time.Microsecond)))
		cfg.Schedule = &sc
		cfg.Gap = &schedule.GapModel{MinGap: *gapMin, Position: *gapPos}
	}
	solver := core.NewSolver(cfg)

	sol, err := solver.SolveQUBO(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitexec: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("problem:  %s (n=%d, %d quadratic terms)\n", describe, *n, q.NumTerms())
	fmt.Printf("hardware: %v, faults: %d dead qubits\n", node.QPU.Topology, len(node.QPU.Faults.DeadQubits))
	fmt.Printf("solution: energy=%.4f reads=%d brokenChains=%d\n", sol.Energy, sol.Reads, sol.BrokenChains)
	if msg := check(sol.Binary); msg != "" {
		fmt.Printf("check:    %s\n", msg)
	}
	fmt.Printf("embedding: %d logical -> %d physical qubits (max chain %d)\n",
		q.Dim(), sol.EmbedStats.PhysicalQubits, sol.EmbedStats.MaxChainLength)

	fmt.Println("\ntime-to-solution breakdown (CPU phases: wall clock; QPU phases: hardware model):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  stage 1\ttranslate\t%v\n", sol.Timing.Translate)
	fmt.Fprintf(w, "\tminor embedding\t%v\n", sol.Timing.EmbedSearch)
	fmt.Fprintf(w, "\tparameter setting\t%v\n", sol.Timing.SetParameters)
	fmt.Fprintf(w, "\tprocessor init\t%v\n", sol.Timing.Program)
	fmt.Fprintf(w, "  stage 2\tanneal+readout\t%v\n", sol.Timing.Execute)
	fmt.Fprintf(w, "  stage 3\tsort\t%v\n", sol.Timing.Sort)
	fmt.Fprintf(w, "\tunembed\t%v\n", sol.Timing.Unembed)
	fmt.Fprintf(w, "  total\t\t%v\n", sol.Timing.Total())
	w.Flush()

	s1, s2 := sol.Timing.Stage1(), sol.Timing.Stage2()
	if s2 > 0 {
		fmt.Printf("\nstage1/stage2 ratio: %.0fx — the quantum-classical interface dominates\n",
			float64(s1)/float64(s2))
	}
}

// buildProblem constructs the requested QUBO plus a description and a
// solution checker returning a human-readable verdict.
func buildProblem(kind string, n int, density float64, rng *rand.Rand) (*qubo.QUBO, string, func([]int8) string) {
	switch kind {
	case "maxcut":
		g := graph.GNP(n, density, rng)
		return qubo.MaxCut(g, nil), "MAX-CUT on G(n,p)", func(b []int8) string {
			return fmt.Sprintf("cut value %.0f of %d edges", qubo.CutValue(g, nil, b), g.Size())
		}
	case "partition":
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(rng.Intn(50) + 1)
		}
		return qubo.NumberPartition(values), "number partitioning", func(b []int8) string {
			return fmt.Sprintf("partition residual %.0f", qubo.PartitionResidual(values, b))
		}
	case "vertexcover":
		g := graph.GNP(n, density, rng)
		return qubo.MinVertexCover(g, 4), "minimum vertex cover", func(b []int8) string {
			size := 0
			for _, x := range b {
				size += int(x)
			}
			return fmt.Sprintf("cover of size %d, valid=%v", size, qubo.IsVertexCover(g, b))
		}
	case "independentset":
		g := graph.GNP(n, density, rng)
		return qubo.MaxIndependentSet(g, 4), "maximum independent set", func(b []int8) string {
			size := 0
			for _, x := range b {
				size += int(x)
			}
			return fmt.Sprintf("independent set of size %d, valid=%v", size, qubo.IsIndependentSet(g, b))
		}
	case "random":
		return qubo.RandomQUBO(n, density, rng), "random QUBO", func([]int8) string { return "" }
	}
	fmt.Fprintf(os.Stderr, "splitexec: unknown problem %q\n", kind)
	os.Exit(2)
	return nil, "", nil
}
