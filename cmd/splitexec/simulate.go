package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/workload"
)

// runSimulate is the `splitexec simulate` subcommand: the open-system
// discrete-event simulator over a scenario file — millions of virtual
// arrivals in milliseconds, no wall clock spent.
func runSimulate(args []string) {
	fs := flag.NewFlagSet("splitexec simulate", flag.ExitOnError)
	var (
		scenarioPath = fs.String("scenario", "", "scenario JSON file (required; see docs/workloads.md)")
		seed         = fs.Int64("seed", 0, "override the scenario's seed (0 keeps the file's)")
		events       = fs.String("events", "", "write the per-event trace to this file")
		asJSON       = fs.Bool("json", false, "emit the result as JSON instead of a table")
	)
	fs.Parse(args)
	sc := loadScenario(*scenarioPath, *seed)

	var opts des.Options
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Fatalf("splitexec simulate: %v", err)
		}
		w := bufio.NewWriter(f)
		opts.EventLog = w
		defer func() {
			w.Flush()
			f.Close()
		}()
	}
	start := time.Now()
	r, err := des.Simulate(sc, opts)
	if err != nil {
		log.Fatalf("splitexec simulate: %v", err)
	}
	wall := time.Since(start)

	if *asJSON {
		printJSON(r)
		return
	}
	fmt.Printf("scenario: %s (%s arrivals, %d classes, %s hosts=%d)\n",
		name(sc), sc.Arrival.Kind, len(sc.Mix), sc.System.Kind, sc.System.Hosts)
	fmt.Printf("simulated %d jobs of virtual time %v in %v of wall time\n\n",
		r.Jobs, r.End.Round(time.Millisecond), wall.Round(time.Millisecond))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  metric\tmean\tp50\tp90\tp99\tp99.9\tmax\n")
	printSummary(w, "queue wait", r.QueueWait)
	printSummary(w, "QPU wait", r.QPUWait)
	printSummary(w, "sojourn", r.Sojourn)
	fmt.Fprintf(w, "  throughput\t%.1f jobs/s\n", r.Throughput)
	fmt.Fprintf(w, "  utilization\thosts %.1f%%, QPU %.1f%%\n", 100*r.HostBusy, 100*r.QPUBusy)
	w.Flush()

	if pred, err := des.AnalyticScenario(sc); err == nil {
		fmt.Printf("\nM/M/c cross-check (c=%d, rho=%.3f):\n", pred.Servers, pred.Rho)
		fmt.Printf("  analytic mean sojourn %v vs simulated %v (%+.1f%%)\n",
			pred.SojournMean.Round(time.Microsecond), r.Sojourn.Mean.Round(time.Microsecond),
			100*(float64(r.Sojourn.Mean)/float64(pred.SojournMean)-1))
		fmt.Printf("  analytic mean queue wait %v, P(queue) = %.3f\n",
			pred.QueueWaitMean.Round(time.Microsecond), pred.ErlangC)
	}
}

func loadScenario(path string, seed int64) *workload.Scenario {
	if path == "" {
		log.Fatalf("splitexec: -scenario is required (a JSON file; see docs/workloads.md)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("splitexec: %v", err)
	}
	sc, err := workload.Decode(data)
	if err != nil {
		log.Fatalf("splitexec: %v", err)
	}
	if seed != 0 {
		sc.Seed = seed
	}
	return sc
}

func name(sc *workload.Scenario) string {
	if sc.Name != "" {
		return sc.Name
	}
	return "(unnamed)"
}

// printJSON emits v as indented JSON on stdout.
func printJSON(v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("splitexec: encoding result: %v", err)
	}
	fmt.Printf("%s\n", out)
}
