package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/loadgen"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/stats"
)

// runLoadgen is the `splitexec loadgen` subcommand: it replays a scenario
// file against a live dispatch service — a running `splitexec serve` over
// TCP via -addr, or an in-process service when -addr is empty — and prints
// the measured latency distributions next to the DES prediction for the
// same scenario.
func runLoadgen(args []string) {
	fs := flag.NewFlagSet("splitexec loadgen", flag.ExitOnError)
	var (
		scenarioPath = fs.String("scenario", "", "scenario JSON file (required; see docs/workloads.md)")
		addr         = fs.String("addr", "", "TCP address of a running `splitexec serve` (empty = run an in-process service)")
		seed         = fs.Int64("seed", 0, "override the scenario's seed (0 keeps the file's)")
		conns        = fs.Int("conns", 16, "TCP connection pool size (with -addr)")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-job round-trip bound (with -addr)")
		asJSON       = fs.Bool("json", false, "emit the result as JSON instead of a table")
		obsAddr      = fs.String("obs", "", "HTTP admin endpoint address for the generator's own telemetry (empty = off)")
	)
	fs.Parse(args)
	sc := loadScenario(*scenarioPath, *seed)

	pred, err := des.Simulate(sc, des.Options{})
	if err != nil {
		log.Fatalf("splitexec loadgen: %v", err)
	}

	opts := loadgen.Options{Addr: *addr, Conns: *conns, Timeout: *timeout}
	var scope *obs.Scope
	if *obsAddr != "" {
		// The generator's own telemetry: client-observed counters and
		// sojourns, with the drift alarm armed straight from the prediction
		// it already computed for the comparison table.
		scope = obs.NewScope()
		if sc.Band != nil {
			if alarm := obs.NewDriftAlarm(pred.SojournBands(*sc.Band), obs.DriftOptions{
				Gauge: scope.Reg.Gauge("splitexec_drift_alarm"),
			}); alarm != nil {
				scope.SetDrift(alarm)
			}
		}
		opts.Obs = scope
	}
	admin := startObs(*obsAddr, scope)
	defer admin.Close()
	if *addr == "" {
		// No remote target: bring up the scenario's own deployment in
		// process, sized for the offered load.
		depth := sc.Horizon.Jobs
		if depth <= 0 {
			depth = 1024
		}
		svc, err := service.New(service.Options{
			Workers:    sc.System.Hosts,
			Fleet:      sc.System.QPUs(),
			QueueDepth: depth,
			Policy:     sc.Policy, // realize the scenario's discipline live
			Obs:        scope,     // one scope for both halves of the run
		})
		if err != nil {
			log.Fatalf("splitexec loadgen: %v", err)
		}
		defer svc.Drain()
		opts = loadgen.Options{Service: svc, Obs: scope}
	}

	got, err := loadgen.Run(sc, opts)
	if err != nil {
		log.Fatalf("splitexec loadgen: %v", err)
	}

	if *asJSON {
		printJSON(struct {
			Measured  *loadgen.Result `json:"measured"`
			Simulated *des.Result     `json:"simulated"`
		}{got, pred})
		return
	}
	target := *addr
	if target == "" {
		target = fmt.Sprintf("in-process (%s hosts=%d)", sc.System.Kind, sc.System.Hosts)
	}
	fmt.Printf("scenario: %s against %s\n", name(sc), target)
	fmt.Printf("measured %d jobs (%d failed) over %v — %.1f jobs/s\n\n",
		got.Jobs, got.Failed, got.Elapsed.Round(time.Millisecond), got.Throughput)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  metric\tmean\tp50\tp90\tp99\tp99.9\tmax\n")
	printSummary(tw, "queue wait", got.QueueWait)
	printSummary(tw, "QPU wait", got.QPUWait)
	printSummary(tw, "sojourn (measured)", got.Sojourn)
	printSummary(tw, "sojourn (simulated)", pred.Sojourn)
	tw.Flush()
	if pred.Sojourn.Mean > 0 {
		fmt.Printf("\nmeasured/simulated mean sojourn: %.2fx (p99 %.2fx)\n",
			float64(got.Sojourn.Mean)/float64(pred.Sojourn.Mean),
			float64(got.Sojourn.P99)/float64(pred.Sojourn.P99))
	}
}

// printSummary writes one digest row of the latency table.
func printSummary(w io.Writer, label string, s stats.DurationSummary) {
	r := func(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
	fmt.Fprintf(w, "  %s\t%v\t%v\t%v\t%v\t%v\t%v\n",
		label, r(s.Mean), r(s.P50), r(s.P90), r(s.P99), r(s.P999), r(s.Max))
}
