package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"text/tabwriter"

	"github.com/splitexec/splitexec/internal/service"
)

// runAdmin is the `splitexec admin` subcommand: remote membership control
// for a running route tier. It speaks the same length-prefixed wire
// protocol as every other client — an admin frame is just a SolveRequest
// carrying a control verb — so the elastic-membership API (docs/cluster.md)
// works across the wire exactly as it does in-process:
//
//	splitexec admin -addr 127.0.0.1:7465 status
//	splitexec admin -addr 127.0.0.1:7465 add 127.0.0.1:7468
//	splitexec admin -addr 127.0.0.1:7465 drain 2
//	splitexec admin -addr 127.0.0.1:7465 remove 2
//
// add boots a new shard into the ring (warming its embedding cache from the
// hot keys the ring diff re-homes before ownership flips); drain retires a
// shard gracefully (queued work re-routes free, in-flight work completes);
// remove evicts it crash-style (in-flight work re-dispatches on the retry
// budget); status prints the membership table and epoch.
func runAdmin(args []string) {
	fs := flag.NewFlagSet("splitexec admin", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7465", "router front-end address")
		jsonOut = fs.Bool("json", false, "print the raw admin reply as JSON")
	)
	fs.Parse(args)
	verb := fs.Arg(0)
	if verb == "" {
		log.Fatalf("splitexec admin: a verb is required: add <addr> | drain <shard> | remove <shard> | status")
	}

	a := service.WireAdmin{Verb: verb}
	switch verb {
	case service.AdminAdd:
		if a.Addr = fs.Arg(1); a.Addr == "" {
			log.Fatalf("splitexec admin: add requires a backing service address")
		}
	case service.AdminDrain, service.AdminRemove:
		n, err := strconv.Atoi(fs.Arg(1))
		if err != nil {
			log.Fatalf("splitexec admin: %s requires a shard index: %v", verb, err)
		}
		a.Shard = n
	case service.AdminStatus:
	default:
		log.Fatalf("splitexec admin: unknown verb %q (want add, drain, remove or status)", verb)
	}

	c, err := service.Dial(*addr)
	if err != nil {
		log.Fatalf("splitexec admin: %v", err)
	}
	defer c.Close()
	reply, err := c.Admin(a)
	if err != nil {
		log.Fatalf("splitexec admin: %v", err)
	}

	if *jsonOut {
		out, err := json.MarshalIndent(reply, "", "  ")
		if err != nil {
			log.Fatalf("splitexec admin: encoding reply: %v", err)
		}
		fmt.Printf("%s\n", out)
		return
	}
	switch verb {
	case service.AdminAdd:
		fmt.Printf("joined %s as shard %d (epoch %d, warmed %d hot keys)\n",
			a.Addr, reply.Index, reply.Epoch, reply.Warmed)
	case service.AdminDrain:
		fmt.Printf("shard %d drained (epoch %d)\n", reply.Index, reply.Epoch)
	case service.AdminRemove:
		fmt.Printf("shard %d removed (epoch %d)\n", reply.Index, reply.Epoch)
	case service.AdminStatus:
		fmt.Printf("epoch %d, %d shard(s)\n", reply.Epoch, len(reply.Shards))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  SHARD\tADDR\tUP\tRING\tDISPATCHED\tBACKLOG")
		for _, sh := range reply.Shards {
			state := "in"
			if !sh.InRing {
				state = "out"
			}
			fmt.Fprintf(w, "  %d\t%s\t%v\t%s\t%d\t%d\n",
				sh.Index, sh.Addr, sh.Up, state, sh.Dispatched, sh.Backlog)
		}
		w.Flush()
	}
}
