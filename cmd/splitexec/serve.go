package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/service"
)

// runServe is the `splitexec serve` subcommand: the concurrent solver
// service behind a TCP front-end. Hosts and devices map onto the paper's
// Fig. 1 architectures — -hosts H -devices 1 is the shared-resource design,
// -hosts H -devices H dedicated-per-node.
func runServe(args []string) {
	fs := flag.NewFlagSet("splitexec serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7464", "listen address")
		hosts   = fs.Int("hosts", 4, "host workers (the H of Fig. 1b/c)")
		devices = fs.Int("devices", 1, "QPU fleet size (1 = shared-resource, hosts = dedicated)")
		queue   = fs.Int("queue", 0, "job queue depth (0 = 2×hosts); full queues apply backpressure")
		policy  = fs.String("policy", "fifo", "queue discipline: fifo, priority, sjf or fair")
		m       = fs.Int("m", 8, "Chimera rows M")
		ncols   = fs.Int("ncols", 8, "Chimera columns N")
		sweeps  = fs.Int("sweeps", 256, "annealer sweeps per read")
		bitpar  = fs.Bool("bitparallel", false, "multi-spin-coded QPU kernel: 64 anneal replicas per machine word")
		seed    = fs.Int64("seed", 1, "base seed for the per-job RNG streams")
		cache   = fs.Bool("cache", true, "share an off-line embedding cache across workers")
		obsAddr = fs.String("obs", "", "HTTP admin endpoint address (/metrics /healthz /jobz /varz /debug/pprof; empty = off)")
		report  = fs.Duration("report", 0, "log a JSON progress snapshot to stderr at this interval (0 = off)")
		driftSc = fs.String("scenario", "", "scenario JSON file whose DES prediction arms the sojourn drift alarm (needs -obs and a scenario band)")
	)
	fs.Parse(args)

	node := machine.SimpleNode()
	node.QPU.Topology = graph.Chimera{M: *m, N: *ncols, L: 4}
	opts := service.Options{
		Workers:    *hosts,
		QueueDepth: *queue,
		Fleet:      *devices,
		Policy:     sched.Policy(*policy),
		Seed:       *seed,
		Base: core.Config{
			Node:    node,
			Sampler: anneal.SamplerOptions{Sweeps: *sweeps, BitParallel: *bitpar},
			Embed:   embed.Options{MaxTries: 20},
		},
	}
	if *cache {
		opts.Cache = core.NewEmbeddingCache()
	}
	var scope *obs.Scope
	if *obsAddr != "" {
		scope = obs.NewScope()
		if *driftSc != "" {
			armDrift(scope, loadScenario(*driftSc, 0))
		}
		opts.Obs = scope
	}
	svc, err := service.New(opts)
	if err != nil {
		log.Fatalf("splitexec serve: %v", err)
	}
	admin := startObs(*obsAddr, scope)
	bound, err := svc.Listen(*addr)
	if err != nil {
		log.Fatalf("splitexec serve: %v", err)
	}
	log.Printf("splitexec: serving split-execution solves on %s (hosts=%d devices=%d policy=%s topology=C(%d,%d,4))",
		bound, svc.Workers(), svc.FleetSize(), svc.Policy(), *m, *ncols)

	// Serve until interrupted, then drain and report the measured run.
	stopReport := startPeriodicReport(*report, "serve", func() any { return svc.Snapshot() })
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("splitexec: draining")
	stopReport()
	rep := svc.Drain()
	// The admin endpoint outlives intake so a final scrape can observe the
	// drained counters, then shuts down gracefully.
	if err := admin.Close(); err != nil {
		log.Printf("splitexec serve: closing admin endpoint: %v", err)
	}
	// The drain report goes to stdout as JSON — machine-readable ops
	// output that scripts can pipe straight into jq or a metrics store.
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("splitexec serve: encoding drain report: %v", err)
	}
	fmt.Printf("%s\n", out)
}
