package splitexec_test

// Extension benchmarks: ablations for the subsystems beyond the paper's
// explicit evaluation (annealing schedules, control precision, parallel
// pre-processing, annealer-backed graph isomorphism, design-space
// exploration). Each maps to a DESIGN.md inventory row.
//
//	BenchmarkScheduleTTS         anneal-duration sweep: default vs optimal TTS
//	BenchmarkControlProgramming  DAC-precision programming cycle
//	BenchmarkParallelEmbedding   multi-seed CMR speed/quality vs workers
//	BenchmarkPipelineOverlap     batch stage-overlap vs serial makespan
//	BenchmarkGraphIsomorphism    annealer GI decision vs classical baseline
//	BenchmarkDesignSpaceSweep    DSE sweep + sensitivity over the stage-1 model

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/control"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/dse"
	"github.com/splitexec/splitexec/internal/gi"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/schedule"
)

// BenchmarkScheduleTTS compares the hardware-default 20 µs anneal against
// the TTS-optimal duration for the default gap model — the schedule ablation
// of §2.2. The reported metrics are modeled QPU time, not wall clock.
func BenchmarkScheduleTTS(b *testing.B) {
	gap := schedule.DefaultGap()
	perRead := 325 * time.Microsecond // readout + thermalization
	b.Run("default20us", func(b *testing.B) {
		var tts time.Duration
		for i := 0; i < b.N; i++ {
			ps, err := schedule.SuccessProbability(schedule.Linear(20*time.Microsecond), gap)
			if err != nil {
				b.Fatal(err)
			}
			tts, err = schedule.TTS(20*time.Microsecond, ps, 0.99, perRead)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tts.Microseconds()), "tts_µs")
	})
	b.Run("optimal", func(b *testing.B) {
		var tts time.Duration
		for i := 0; i < b.N; i++ {
			var err error
			_, tts, err = schedule.OptimalAnnealTime(gap, 0.99, schedule.DW2Limits(), perRead)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tts.Microseconds()), "tts_µs")
	})
}

// BenchmarkControlProgramming measures the electronic-control programming
// cycle (rescale + quantize + ledger) across DAC precisions and reports the
// worst parameter drift each precision introduces.
func BenchmarkControlProgramming(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	model := qubo.RandomIsing(graph.Vesuvius().Graph(), 1, 1, rng)
	for _, bits := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			ctl := control.NewController()
			ctl.DAC.Bits = bits
			var maxErr float64
			for i := 0; i < b.N; i++ {
				res, err := ctl.Program(model, nil)
				if err != nil {
					b.Fatal(err)
				}
				maxErr = res.MaxQuantErr
			}
			b.ReportMetric(maxErr, "max_quant_err")
		})
	}
}

// BenchmarkParallelEmbedding races the CMR heuristic across worker counts
// (the §4 "parallel strategies" ablation): same 8 seeds, 1 vs 4 workers.
func BenchmarkParallelEmbedding(b *testing.B) {
	hw := graph.Vesuvius().Graph()
	g := graph.Complete(10)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var quality float64
			for i := 0; i < b.N; i++ {
				res, err := parallel.FindEmbedding(g, hw, parallel.EmbedOptions{
					Workers: workers, Seeds: 8, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				quality = res.Quality
			}
			b.ReportMetric(quality, "qubits")
		})
	}
}

// BenchmarkPipelineOverlap evaluates the stage-overlap executor on the
// paper's regime (stage 1 dominant) and on balanced stages, reporting the
// modeled speedup over serial execution.
func BenchmarkPipelineOverlap(b *testing.B) {
	mk := func(pre, qpu, post time.Duration, n int) []parallel.StageCost {
		jobs := make([]parallel.StageCost, n)
		for i := range jobs {
			jobs[i] = parallel.StageCost{Pre: pre, QPU: qpu, Post: post}
		}
		return jobs
	}
	cases := []struct {
		name string
		jobs []parallel.StageCost
	}{
		{"stage1-dominant", mk(100*time.Millisecond, 333*time.Microsecond, 10*time.Microsecond, 32)},
		{"balanced", mk(time.Millisecond, time.Millisecond, 100*time.Microsecond, 32)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				var err error
				sp, err = parallel.Speedup(c.jobs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkGraphIsomorphism compares the annealer-backed GI decision (the
// §3.3 "QPU programs the QPU" path) against the classical backtracking
// baseline on a relabeled C6.
func BenchmarkGraphIsomorphism(b *testing.B) {
	g := graph.Cycle(6)
	h, err := gi.Relabel(g, []int{3, 5, 1, 0, 4, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("annealer", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		found := 0
		for i := 0; i < b.N; i++ {
			res, err := gi.AreIsomorphic(g, h, gi.Options{Reads: 400}, rng)
			if err != nil {
				b.Fatal(err)
			}
			if res.Isomorphic {
				found++
			}
		}
		b.ReportMetric(float64(found)/float64(b.N), "success_rate")
	})
	b.Run("classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !graph.Isomorphic(g, h) {
				b.Fatal("baseline missed isomorphism")
			}
		}
	})
}

// BenchmarkDesignSpaceSweep runs the DSE layer over the paper's stage-1
// model: a 32-point LPS sweep plus the sensitivity ranking at LPS=50.
func BenchmarkDesignSpaceSweep(b *testing.B) {
	node := machine.SimpleNode()
	f, err := aspen.Parse(node.ToAspen())
	if err != nil {
		b.Fatal(err)
	}
	spec, err := aspen.BuildMachine(f, node.Name)
	if err != nil {
		b.Fatal(err)
	}
	s1, _, _, err := core.ParseStageModels()
	if err != nil {
		b.Fatal(err)
	}
	obj := dse.ModelObjective(s1, spec, aspen.EvalOptions{
		HostSocket: node.CPU.Name,
		Params:     map[string]float64{"M": 12, "N": 12},
	})
	b.Run("sweep32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dse.Sweep(obj, []dse.Axis{{Name: "LPS", Values: dse.LinSpace(1, 100, 32)}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sensitivity", func(b *testing.B) {
		var top float64
		for i := 0; i < b.N; i++ {
			sens, err := dse.Sensitivities(obj, map[string]float64{"LPS": 50, "M": 12, "N": 12}, 0.02)
			if err != nil {
				b.Fatal(err)
			}
			top = sens[0].Elasticity
		}
		b.ReportMetric(top, "lps_elasticity")
	})
}

// BenchmarkQuadratization measures the k-local → 2-local lowering on random
// 3-SAT penalty polynomials, reporting how many Rosenberg auxiliaries the
// recursive substitution introduces.
func BenchmarkQuadratization(b *testing.B) {
	for _, nClauses := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("clauses=%d", nClauses), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			nVars := 4 + nClauses/4
			clauses := make([]qubo.Clause3, nClauses)
			for i := range clauses {
				p := rng.Perm(nVars)
				clauses[i] = qubo.Clause3{
					Var: [3]int{p[0], p[1], p[2]},
					Neg: [3]bool{rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0},
				}
			}
			poly, err := qubo.Max3SAT(nVars, clauses)
			if err != nil {
				b.Fatal(err)
			}
			var aux int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qz, err := poly.Quadratize(0)
				if err != nil {
					b.Fatal(err)
				}
				aux = qz.Aux
			}
			b.ReportMetric(float64(aux), "aux_vars")
		})
	}
}
